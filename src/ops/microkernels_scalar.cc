/**
 * @file
 * Scalar microkernel tier: 4 independent accumulator chains with a
 * pairwise merge — the same association order as the seed
 * `dotUnrolled`, so existing exact-value tests keep their bits. This
 * TU is compiled with the base target (no -mfma), which also
 * guarantees the compiler cannot contract the multiply-adds.
 */

#include "ops/microkernels_impl.hh"

namespace recperf {
namespace microkernels {
namespace {

struct ScalarOps
{
    struct V
    {
        float f[4];
    };
    static constexpr int kLanes = 4;
    static constexpr int kAcc = 1;

    static V
    zero()
    {
        return {{0.0f, 0.0f, 0.0f, 0.0f}};
    }
    static V
    load(const float *p)
    {
        return {{p[0], p[1], p[2], p[3]}};
    }
    static V
    madd(V a, V b, V acc)
    {
        for (int i = 0; i < 4; ++i)
            acc.f[i] += a.f[i] * b.f[i];
        return acc;
    }
    static V
    add(V a, V b)
    {
        for (int i = 0; i < 4; ++i)
            a.f[i] += b.f[i];
        return a;
    }
    static void
    store(float *p, V a)
    {
        for (int i = 0; i < 4; ++i)
            p[i] = a.f[i];
    }
    static float
    reduce(const V acc[kAcc])
    {
        const float *f = acc[0].f;
        return (f[0] + f[1]) + (f[2] + f[3]);
    }
    static V
    broadcast(float x)
    {
        return {{x, x, x, x}};
    }
    static V
    loadU8(const uint8_t *p)
    {
        return {{static_cast<float>(p[0]), static_cast<float>(p[1]),
                 static_cast<float>(p[2]), static_cast<float>(p[3])}};
    }
    static V
    dequantMadd(V v, V scale, V bias)
    {
        V t;
        for (int i = 0; i < 4; ++i)
            t.f[i] = v.f[i] * scale.f[i] + bias.f[i];
        return t;
    }
};

} // namespace

const IsaKernels &
scalarKernels()
{
    static const IsaKernels kernels = detail::makeKernels<ScalarOps>();
    return kernels;
}

} // namespace microkernels
} // namespace recperf
