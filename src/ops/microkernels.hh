/**
 * @file
 * Per-ISA GEMM / SparseLengthsSum microkernels.
 *
 * Each vector tier (scalar, AVX2+FMA, AVX-512F) lives in its own
 * translation unit compiled with per-file `-mavx2` / `-mavx512f`
 * flags, so one binary carries every variant and the kernel cache
 * picks among them at runtime from CPUID (machine/simd.hh).
 *
 * Determinism contract (DESIGN.md §14): every ISA tier fixes ONE
 * accumulation pattern per output element — the number of independent
 * accumulator chains, their stride over K, the reduction tree, and the
 * scalar-tail handling never vary with the tuned blocking parameters.
 * MC (parallel grain), NC (pack panel width), KC (pack chunk size) and
 * NR (register-tile columns) only re-tile *loops*, never re-associate
 * *arithmetic*, so within a pinned ISA the results are bit-identical
 * across thread counts, blocking choices, and cache cold/warm runs.
 * KC is therefore constrained to multiples of kKcQuantum (64), which
 * keeps chunk boundaries aligned with every tier's accumulator stride
 * (scalar steps 4, AVX2 steps 16, AVX-512 steps 32).
 *
 * Fixed patterns:
 *  - scalar: 4 independent scalar chains, stride 4 (the seed
 *    `dotUnrolled` shape), merged (a0+a1)+(a2+a3), then a sequential
 *    scalar tail. No FMA (base x86-64 codegen cannot contract).
 *  - AVX2: 2 independent 8-lane FMA chains, stride 16, reduced with a
 *    fixed pairwise tree (256 -> 128 -> 64 -> 32), sequential tail.
 *  - AVX-512: 2 independent 16-lane FMA chains, stride 32, fixed
 *    512 -> 256 -> 128 -> 64 -> 32 tree, sequential tail.
 *
 * Float SLS accumulation is element-wise vertical adds, so vector
 * tiers are bit-identical to scalar. Quantized SLS fuses the
 * dequantize multiply-add into an FMA on vector tiers (one rounding
 * instead of two), hence the 1e-4 relative-tolerance contract there.
 */

#ifndef RECPERF_OPS_MICROKERNELS_HH
#define RECPERF_OPS_MICROKERNELS_HH

#include <cstdint>

#include "machine/simd.hh"

namespace recperf {
namespace microkernels {

/** KC granularity; keeps pack-chunk edges on accumulator strides. */
constexpr int64_t kKcQuantum = 64;

/**
 * One A row times a packed B panel (columns [n0, n0+w) of row-major
 * B[n][k]), writing / accumulating into crow[0..w). The pack layout is
 * chunk-major (see gemmPackPanel); @p kc is the pack chunk size and
 * @p nr the register-tile width (1, 2, or 4 columns per inner tile).
 */
using GemmRowFn = void (*)(const float *arow, const float *pack,
                           float *crow, int64_t w, int64_t k, int64_t kc,
                           int nr, bool accumulate);

/** dst[0..dim) += src[0..dim) (embedding-row gather accumulate). */
using SlsAccumFn = void (*)(float *dst, const float *src, int64_t dim);

/** dst[c] += codes[c] * scale + bias (fused dequantize-accumulate). */
using QslsAccumFn = void (*)(float *dst, const uint8_t *codes,
                             float scale, float bias, int64_t dim);

/** Unroll variants per SLS kernel (1x / 2x vector step). */
constexpr int kSlsUnrolls = 2;

/** Kernel set for one ISA tier. */
struct IsaKernels
{
    /** False when the TU was compiled without this tier's ISA. */
    bool available = false;
    GemmRowFn gemmRow = nullptr;
    SlsAccumFn slsAccum[kSlsUnrolls] = {};
    QslsAccumFn qslsAccum[kSlsUnrolls] = {};
};

/**
 * Kernels for @p isa. The scalar tier is always available; vector
 * tiers report available=false when the toolchain could not build
 * them (the cache then never dispatches there).
 */
const IsaKernels &kernelsFor(KernelIsa isa);

/** Floats needed to pack an @p nc-wide panel of K depth @p k. */
inline int64_t
gemmPackFloats(int64_t nc, int64_t k, int64_t kc)
{
    int64_t chunks = (k + kc - 1) / kc;
    return chunks > 0 ? chunks * nc * kc : nc;
}

/**
 * Pack columns [n0, n0+w) of row-major B[n][k] into chunk-major
 * layout: chunk q of column j lives at pack + (q*w + j)*kc, holding
 * min(kc, k - q*kc) contiguous B values (the last chunk is ragged —
 * no zero padding, so -0.0/+0.0 bit patterns are never synthesized).
 */
void gemmPackPanel(const float *b, int64_t k, int64_t n0, int64_t w,
                   int64_t kc, float *pack);

} // namespace microkernels
} // namespace recperf

#endif // RECPERF_OPS_MICROKERNELS_HH
