#include "ops/conv.hh"

#include <algorithm>
#include <cmath>

#include "core/aligned.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "ops/fully_connected.hh"

namespace recperf {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding)
    : in_ch_(in_channels), out_ch_(out_channels), kernel_(kernel),
      stride_(stride), padding_(padding),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels})
{
    RP_ASSERT(in_channels > 0 && out_channels > 0 && kernel > 0,
              "conv dims must be positive");
    RP_ASSERT(stride > 0 && padding >= 0, "bad stride/padding");
}

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng &rng)
    : Conv2d(in_channels, out_channels, kernel, stride, padding)
{
    float fan_in = static_cast<float>(in_channels * kernel * kernel);
    weight_.fillGaussian(rng, std::sqrt(2.0f / fan_in));
}

int64_t
Conv2d::outSize(int64_t in) const
{
    int64_t padded = in + 2 * padding_ - kernel_;
    RP_ASSERT(padded >= 0, "kernel %lld larger than padded input %lld",
              static_cast<long long>(kernel_),
              static_cast<long long>(in + 2 * padding_));
    return padded / stride_ + 1;
}

Tensor
Conv2d::forward(const Tensor &x) const
{
    RP_ASSERT(x.rank() == 4, "conv input must be rank 4, got %s",
              shapeToString(x.shape()).c_str());
    RP_ASSERT(x.dim(1) == in_ch_, "conv input channels %lld != %lld",
              static_cast<long long>(x.dim(1)),
              static_cast<long long>(in_ch_));

    const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
    const int64_t oh = outSize(h), ow = outSize(w);
    const int64_t spatial = oh * ow;
    const int64_t patch = in_ch_ * kernel_ * kernel_;
    Tensor y({n, out_ch_, oh, ow});

    // im2col + gemmBt: each output pixel becomes a row of gathered
    // input patches, and the [out_ch, patch] weight block is exactly
    // gemmBt's B^T operand. The convolution thereby inherits the GEMM
    // kernel's unrolling and thread-pool row parallelism.
    AlignedBuffer<float> col(static_cast<size_t>(spatial * patch));
    AlignedBuffer<float> prod(static_cast<size_t>(spatial * out_ch_));
    for (int64_t img = 0; img < n; ++img) {
        const float *src = x.data() + img * in_ch_ * h * w;
        int64_t grain =
            std::max<int64_t>(1, 2048 / std::max<int64_t>(1, patch));
        parallelFor(0, spatial, grain, [&](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
                int64_t oy = r / ow, ox = r % ow;
                float *dst = col.data() + r * patch;
                for (int64_t ic = 0; ic < in_ch_; ++ic) {
                    for (int64_t ky = 0; ky < kernel_; ++ky) {
                        int64_t iy = oy * stride_ + ky - padding_;
                        for (int64_t kx = 0; kx < kernel_; ++kx) {
                            int64_t ix = ox * stride_ + kx - padding_;
                            bool inside = iy >= 0 && iy < h && ix >= 0 &&
                                ix < w;
                            dst[(ic * kernel_ + ky) * kernel_ + kx] =
                                inside ? src[(ic * h + iy) * w + ix]
                                       : 0.0f;
                        }
                    }
                }
            }
        });
        gemmBt(col.data(), weight_.data(), prod.data(), spatial,
               out_ch_, patch, /*accumulate=*/false);
        float *out = y.data() + img * out_ch_ * spatial;
        for (int64_t oc = 0; oc < out_ch_; ++oc) {
            float bias = bias_.at(oc);
            for (int64_t r = 0; r < spatial; ++r)
                out[oc * spatial + r] = prod[static_cast<size_t>(
                                            r * out_ch_ + oc)] +
                    bias;
        }
    }
    return y;
}

int64_t
Conv2d::paramCount() const
{
    return out_ch_ * in_ch_ * kernel_ * kernel_ + out_ch_;
}

OpCost
Conv2d::cost(int64_t batch, int64_t in_ch, int64_t out_ch, int64_t kernel,
             int64_t out_h, int64_t out_w)
{
    OpCost c;
    double macs = static_cast<double>(batch) * out_ch * out_h * out_w *
        in_ch * kernel * kernel;
    c.flops = 2.0 * macs;
    c.bytesRead = 4.0 * (static_cast<double>(out_ch) * in_ch * kernel *
                             kernel +
                         static_cast<double>(batch) * in_ch * out_h *
                             out_w);
    c.bytesWritten = 4.0 * static_cast<double>(batch) * out_ch * out_h *
        out_w;
    return c;
}

} // namespace recperf
