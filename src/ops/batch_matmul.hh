/**
 * @file
 * Batched matrix multiply, used for pairwise feature interaction.
 *
 * DLRM-style models interact the pooled embedding vectors and the
 * Bottom-FC output by stacking them into Z of shape [batch, f, d] and
 * computing Z * Z^T per batch element; the paper's operator breakdowns
 * report this as BatchMatMul.
 */

#ifndef RECPERF_OPS_BATCH_MATMUL_HH
#define RECPERF_OPS_BATCH_MATMUL_HH

#include "ops/op_cost.hh"
#include "tensor/tensor.hh"

namespace recperf {

/**
 * C[b] = A[b] * B[b]^T for every batch element b.
 *
 * @param a tensor of shape [batch, m, k].
 * @param b tensor of shape [batch, n, k] (transposed operand).
 * @return tensor of shape [batch, m, n].
 */
Tensor batchMatMulBt(const Tensor &a, const Tensor &b);

/**
 * Pairwise dot-product interaction: given features [batch, f, d],
 * return the strictly-lower-triangular entries of Z * Z^T flattened to
 * [batch, f*(f-1)/2]. This is DLRM's "dot" interaction.
 */
Tensor dotInteraction(const Tensor &features);

/** Work accounting for batchMatMulBt. */
OpCost batchMatMulCost(int64_t batch, int64_t m, int64_t n, int64_t k);

} // namespace recperf

#endif // RECPERF_OPS_BATCH_MATMUL_HH
