/**
 * @file
 * Static work accounting for operators.
 *
 * Every operator reports the arithmetic work and memory traffic a single
 * invocation performs. This is the input to the roofline side of the
 * timing model and to the FLOPs-vs-bytes characterization (Fig 2 and
 * Fig 5 in the paper).
 */

#ifndef RECPERF_OPS_OP_COST_HH
#define RECPERF_OPS_OP_COST_HH

#include <string>

namespace recperf {

/** Operator kinds tracked by the fleet-wide cycle breakdown (Fig 4). */
enum class OpKind
{
    FC,          ///< fully-connected / GEMM
    SLS,         ///< SparseLengthsSum (embedding lookup + pooled sum)
    Concat,      ///< feature concatenation
    BatchMM,     ///< batched matrix multiply (feature interaction)
    Activation,  ///< ReLU / sigmoid element-wise
    Conv,        ///< convolution (proxy models only)
    Recurrent,   ///< recurrent cell (proxy models only)
    Other,       ///< anything else
};

/** Short display name, e.g. "FC" or "SLS". */
const char *opKindName(OpKind kind);

/**
 * Arithmetic and memory-traffic totals for one operator invocation.
 * bytesRead counts algorithmic reads (parameters + inputs), i.e. traffic
 * before any cache filtering; the cache simulator decides how much of it
 * reaches DRAM.
 */
struct OpCost
{
    double flops = 0.0;
    double bytesRead = 0.0;
    double bytesWritten = 0.0;

    OpCost &operator+=(const OpCost &o);
    OpCost operator+(const OpCost &o) const;

    /** FLOPs per byte read — the paper's operational intensity metric. */
    double intensity() const;
};

} // namespace recperf

#endif // RECPERF_OPS_OP_COST_HH
