/**
 * @file
 * Row-wise 8-bit quantized embedding tables.
 *
 * The paper (§V, §VIII) points at aggressive compression as the way to
 * tame the RMCs' tens-of-GB embedding storage. This implements the
 * standard fused row-wise scheme used in production recommendation
 * stacks: each row stores int8 codes plus an fp32 (scale, bias) pair,
 * cutting storage ~4x and roughly halving the cache lines touched per
 * gather (dim 32: 128 B -> 40 B per row).
 */

#ifndef RECPERF_OPS_QUANTIZED_EMBEDDING_HH
#define RECPERF_OPS_QUANTIZED_EMBEDDING_HH

#include <cstdint>
#include <vector>

#include "ops/op_cost.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

namespace recperf {

/**
 * An embedding table quantized to int8 with per-row scale and bias
 * (fused row-wise quantization).
 */
class QuantizedEmbeddingTable
{
  public:
    /** Quantize an existing fp32 table. */
    explicit QuantizedEmbeddingTable(const EmbeddingTable &source);

    int64_t rows() const { return rows_; }
    int64_t dim() const { return dim_; }

    /** Bytes per stored row: dim int8 codes + fp32 scale + fp32 bias. */
    int64_t rowBytes() const { return dim_ + 8; }

    /** Total storage, ~4x below the fp32 original. */
    int64_t storageBytes() const { return rows_ * rowBytes(); }

    /** Dequantize a single row into @p out (length dim()). */
    void dequantizeRow(int64_t row, float *out) const;

    /**
     * Pooled lookup with on-the-fly dequantization; semantically
     * SparseLengthsSum over the dequantized table.
     */
    Tensor forward(const std::vector<int64_t> &ids,
                   const std::vector<int64_t> &lengths,
                   SlsReduction reduction = SlsReduction::Sum) const;

    /**
     * Worst-case absolute quantization error of any element: half a
     * quantization step of the widest row.
     */
    float maxQuantizationStep() const;

    /** Work accounting for one pooled quantized lookup. */
    static OpCost cost(int64_t total_ids, int64_t outputs, int64_t dim);

    /**
     * Raw mutable storage views for the integrity/fault layer
     * (ops/integrity.hh): shields checksum — and fault injection
     * corrupts — the stored bytes directly, scale/bias included.
     */
    uint8_t *codeData() { return codes_.data(); }
    float *scaleData() { return scales_.data(); }
    float *biasData() { return biases_.data(); }

  private:
    int64_t rows_;
    int64_t dim_;
    std::vector<uint8_t> codes_;  ///< rows_ x dim_ int8 codes
    std::vector<float> scales_;   ///< per-row scale
    std::vector<float> biases_;   ///< per-row bias (row minimum)
};

} // namespace recperf

#endif // RECPERF_OPS_QUANTIZED_EMBEDDING_HH
