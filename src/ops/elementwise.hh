/**
 * @file
 * Element-wise activations and tensor concatenation.
 */

#ifndef RECPERF_OPS_ELEMENTWISE_HH
#define RECPERF_OPS_ELEMENTWISE_HH

#include <vector>

#include "ops/op_cost.hh"
#include "tensor/tensor.hh"

namespace recperf {

/** ReLU applied out-of-place. */
Tensor relu(const Tensor &x);

/** ReLU applied in place. */
void reluInplace(Tensor &x);

/** Logistic sigmoid applied out-of-place (the CTR output, Fig 3). */
Tensor sigmoid(const Tensor &x);

/** Work accounting for an element-wise op over @p elements values. */
OpCost elementwiseCost(int64_t elements);

/**
 * Concatenate rank-2 tensors along dim 1 (the feature axis). All inputs
 * must share dim 0. This is the Concat operator that merges the
 * Bottom-FC output with the pooled embedding vectors (Fig 3).
 */
Tensor concatCols(const std::vector<const Tensor *> &inputs);

/** Work accounting for concatenating @p total_elements values. */
OpCost concatCost(int64_t total_elements);

} // namespace recperf

#endif // RECPERF_OPS_ELEMENTWISE_HH
