#include "ops/microkernels.hh"

#include <algorithm>
#include <cstring>

#include "core/logging.hh"
#include "ops/microkernels_impl.hh"

namespace recperf {
namespace microkernels {

const IsaKernels &
kernelsFor(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::Scalar: return scalarKernels();
      case KernelIsa::Avx2: return avx2Kernels();
      case KernelIsa::Avx512: return avx512Kernels();
    }
    return scalarKernels();
}

void
gemmPackPanel(const float *b, int64_t k, int64_t n0, int64_t w,
              int64_t kc, float *pack)
{
    RP_ASSERT(kc > 0 && kc % kKcQuantum == 0,
              "pack chunk size must be a positive multiple of %lld",
              static_cast<long long>(kKcQuantum));
    const int64_t chunks = (k + kc - 1) / kc;
    for (int64_t q = 0; q < chunks; ++q) {
        const int64_t base = q * kc;
        const int64_t kb = std::min(kc, k - base);
        for (int64_t j = 0; j < w; ++j) {
            std::memcpy(pack + (q * w + j) * kc, b + (n0 + j) * k + base,
                        static_cast<size_t>(kb) * sizeof(float));
        }
    }
}

} // namespace microkernels
} // namespace recperf
