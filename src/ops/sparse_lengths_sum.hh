/**
 * @file
 * SparseLengthsSum — the embedding-table operator (Algorithm 1).
 *
 * Transforms lists of sparse categorical IDs into dense vectors by
 * gathering rows of an embedding table and reducing them element-wise.
 * This is the memory-intensive, irregular-access operator that
 * distinguishes recommendation models from CNNs/RNNs (Section II-C).
 */

#ifndef RECPERF_OPS_SPARSE_LENGTHS_SUM_HH
#define RECPERF_OPS_SPARSE_LENGTHS_SUM_HH

#include <cstdint>
#include <vector>

#include "ops/op_cost.hh"
#include "tensor/tensor.hh"

namespace recperf {

class Rng;

/** Reduction applied across the gathered embedding rows. */
enum class SlsReduction
{
    Sum,  ///< element-wise sum (the Caffe2 SparseLengthsSum default)
    Mean, ///< element-wise mean (SparseLengthsMean)
};

/**
 * An embedding table of shape [rows, dim] with the pooled-lookup
 * operator from Algorithm 1 of the paper.
 */
class EmbeddingTable
{
  public:
    /** Construct a zero table. */
    EmbeddingTable(int64_t rows, int64_t dim);

    /** Construct with uniform(-0.5, 0.5)/dim initialization. */
    EmbeddingTable(int64_t rows, int64_t dim, Rng &rng);

    int64_t rows() const { return rows_; }
    int64_t dim() const { return dim_; }
    Tensor &table() { return table_; }
    const Tensor &table() const { return table_; }

    /** Parameter count (rows * dim). */
    int64_t paramCount() const { return rows_ * dim_; }

    /** Storage footprint in bytes at fp32. */
    int64_t storageBytes() const { return paramCount() * 4; }

    /**
     * Pooled lookup, exactly Algorithm 1 (SLS pseudo-code).
     *
     * @param ids flat list of row indices, concatenated per output slot.
     * @param lengths number of IDs contributing to each output row;
     *                lengths.size() output rows are produced and
     *                sum(lengths) must equal ids.size().
     * @param reduction Sum or Mean across the gathered rows.
     * @return dense tensor of shape [lengths.size(), dim].
     */
    Tensor forward(const std::vector<int64_t> &ids,
                   const std::vector<int64_t> &lengths,
                   SlsReduction reduction = SlsReduction::Sum) const;

    /**
     * Work accounting for one pooled lookup.
     * @param total_ids total number of gathered rows (sum of lengths).
     * @param outputs number of pooled output rows.
     * @param dim embedding dimension.
     */
    static OpCost cost(int64_t total_ids, int64_t outputs, int64_t dim);

  private:
    int64_t rows_;
    int64_t dim_;
    Tensor table_;
};

} // namespace recperf

#endif // RECPERF_OPS_SPARSE_LENGTHS_SUM_HH
