#include "ops/integrity.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/logging.hh"
#include "core/rng.hh"
#include "obs/metrics.hh"
#include "ops/fully_connected.hh"
#include "ops/quantized_embedding.hh"
#include "ops/sparse_lengths_sum.hh"

namespace recperf {

uint64_t
fnv1a(const void *data, size_t bytes, uint64_t h)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

const char *
corruptionKindName(CorruptionKind kind)
{
    switch (kind) {
    case CorruptionKind::SingleBitFlip:
        return "single_bit_flip";
    case CorruptionKind::MultiBitFlip:
        return "multi_bit_flip";
    case CorruptionKind::StuckRow:
        return "stuck_row";
    }
    return "unknown";
}

IntegrityShield::IntegrityShield(std::string name, int64_t rows,
                                 std::vector<Region> regions)
    : name_(std::move(name)), rows_(rows), row_bytes_(0),
      regions_(std::move(regions))
{
    RP_ASSERT(rows_ > 0, "shield '%s' needs rows > 0", name_.c_str());
    RP_ASSERT(!regions_.empty(), "shield '%s' needs a region",
              name_.c_str());
    for (const Region &r : regions_) {
        RP_ASSERT(r.data != nullptr && r.rowBytes > 0 &&
                      r.strideBytes >= r.rowBytes,
                  "shield '%s': bad region", name_.c_str());
        row_bytes_ += r.rowBytes;
    }
}

IntegrityShield
IntegrityShield::forTable(EmbeddingTable &table, std::string name)
{
    size_t row = static_cast<size_t>(table.dim()) * sizeof(float);
    return IntegrityShield(
        std::move(name), table.rows(),
        {{reinterpret_cast<uint8_t *>(table.table().data()), row, row}});
}

IntegrityShield
IntegrityShield::forQuantized(QuantizedEmbeddingTable &table,
                              std::string name)
{
    // Three regions per row: the int8 payload plus the fp32 scale and
    // bias — a flip in any of them corrupts the dequantized row, so
    // all three feed the checksum (satellite: scale/bias included).
    return IntegrityShield(
        std::move(name), table.rows(),
        {{table.codeData(), static_cast<size_t>(table.dim()),
          static_cast<size_t>(table.dim())},
         {reinterpret_cast<uint8_t *>(table.scaleData()), sizeof(float),
          sizeof(float)},
         {reinterpret_cast<uint8_t *>(table.biasData()), sizeof(float),
          sizeof(float)}});
}

IntegrityShield
IntegrityShield::forLayer(FullyConnected &layer, std::string name)
{
    size_t wrow = static_cast<size_t>(layer.inFeatures()) * sizeof(float);
    return IntegrityShield(
        std::move(name), layer.outFeatures(),
        {{reinterpret_cast<uint8_t *>(layer.weight().data()), wrow, wrow},
         {reinterpret_cast<uint8_t *>(layer.bias().data()), sizeof(float),
          sizeof(float)}});
}

uint8_t *
IntegrityShield::rowByte(int64_t row, size_t offset) const
{
    for (const Region &r : regions_) {
        if (offset < r.rowBytes)
            return r.data + static_cast<size_t>(row) * r.strideBytes +
                offset;
        offset -= r.rowBytes;
    }
    RP_ASSERT(false, "shield '%s': byte offset out of row",
              name_.c_str());
    return nullptr;
}

void
IntegrityShield::gatherRow(int64_t row, uint8_t *out) const
{
    for (const Region &r : regions_) {
        std::memcpy(out, r.data + static_cast<size_t>(row) * r.strideBytes,
                    r.rowBytes);
        out += r.rowBytes;
    }
}

void
IntegrityShield::seal()
{
    checksums_.assign(static_cast<size_t>(rows_), 0);
    golden_.resize(static_cast<size_t>(rows_) * row_bytes_);
    for (int64_t row = 0; row < rows_; ++row) {
        uint8_t *dst = golden_.data() +
            static_cast<size_t>(row) * row_bytes_;
        gatherRow(row, dst);
        checksums_[static_cast<size_t>(row)] = fnv1a(dst, row_bytes_);
    }
}

uint64_t
IntegrityShield::rowChecksum(int64_t row) const
{
    RP_ASSERT(row >= 0 && row < rows_, "row %lld out of %lld",
              static_cast<long long>(row), static_cast<long long>(rows_));
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const Region &r : regions_)
        h = fnv1a(r.data + static_cast<size_t>(row) * r.strideBytes,
                  r.rowBytes, h);
    return h;
}

bool
IntegrityShield::verifyRow(int64_t row) const
{
    RP_ASSERT(sealed(), "shield '%s' not sealed", name_.c_str());
    return rowChecksum(row) == checksums_[static_cast<size_t>(row)];
}

std::vector<int64_t>
IntegrityShield::scanCorrupted() const
{
    std::vector<int64_t> bad;
    for (int64_t row = 0; row < rows_; ++row)
        if (!verifyRow(row))
            bad.push_back(row);
    return bad;
}

void
IntegrityShield::flipBit(int64_t row, uint64_t bit_offset)
{
    RP_ASSERT(row >= 0 && row < rows_, "row %lld out of %lld",
              static_cast<long long>(row), static_cast<long long>(rows_));
    RP_ASSERT(bit_offset < row_bytes_ * 8, "bit %llu out of row",
              static_cast<unsigned long long>(bit_offset));
    *rowByte(row, static_cast<size_t>(bit_offset / 8)) ^=
        static_cast<uint8_t>(1u << (bit_offset % 8));
}

int
IntegrityShield::corrupt(CorruptionKind kind, int64_t row,
                         uint64_t bit_offset, Rng &rng)
{
    switch (kind) {
    case CorruptionKind::SingleBitFlip:
        flipBit(row, bit_offset);
        return 1;
    case CorruptionKind::MultiBitFlip: {
        // A burst: the addressed bit plus two more in the same row
        // (multi-bit DRAM faults cluster within a word line).
        flipBit(row, bit_offset);
        for (int i = 0; i < 2; ++i)
            flipBit(row, rng.nextBelow(row_bytes_ * 8));
        return 3;
    }
    case CorruptionKind::StuckRow: {
        int flipped = 0;
        for (size_t b = 0; b < row_bytes_; ++b) {
            uint8_t *p = rowByte(row, b);
            flipped += 8 - __builtin_popcount(*p);
            *p = 0xFF; // stuck-at-one: fp32 lanes read back as NaN
        }
        return flipped;
    }
    }
    return 0;
}

bool
IntegrityShield::repairRow(int64_t row)
{
    RP_ASSERT(sealed(), "shield '%s' not sealed", name_.c_str());
    RP_ASSERT(row >= 0 && row < rows_, "row %lld out of %lld",
              static_cast<long long>(row), static_cast<long long>(rows_));
    const uint8_t *src = golden_.data() +
        static_cast<size_t>(row) * row_bytes_;
    bool changed = false;
    size_t offset = 0;
    for (const Region &r : regions_) {
        uint8_t *dst = r.data + static_cast<size_t>(row) * r.strideBytes;
        if (std::memcmp(dst, src + offset, r.rowBytes) != 0) {
            std::memcpy(dst, src + offset, r.rowBytes);
            changed = true;
        }
        offset += r.rowBytes;
    }
    return changed;
}

void
checkEnvelope(const float *x, size_t n, float max_abs,
              EnvelopeStats &stats)
{
    for (size_t i = 0; i < n; ++i) {
        float v = x[i];
        ++stats.checked;
        if (std::isnan(v))
            ++stats.nans;
        else if (std::isinf(v))
            ++stats.infs;
        else if (max_abs > 0.0f && std::fabs(v) > max_abs)
            ++stats.range;
    }
}

IntegrityRuntime &
IntegrityRuntime::global()
{
    static IntegrityRuntime runtime;
    return runtime;
}

void
IntegrityRuntime::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
IntegrityRuntime::configure(double sample_rate, bool repair_on_detect)
{
    RP_ASSERT(sample_rate > 0.0 && sample_rate <= 1.0,
              "inline sample rate %g outside (0,1]", sample_rate);
    std::lock_guard<std::mutex> lock(mu_);
    every_n_ = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(1.0 / sample_rate)));
    repair_on_detect_ = repair_on_detect;
}

void
IntegrityRuntime::attach(const void *key, IntegrityShield *shield)
{
    RP_ASSERT(shield != nullptr && shield->sealed(),
              "attach requires a sealed shield");
    std::lock_guard<std::mutex> lock(mu_);
    shields_[key] = Entry{shield, 0};
}

void
IntegrityRuntime::detach(const void *key)
{
    std::lock_guard<std::mutex> lock(mu_);
    shields_.erase(key);
}

void
IntegrityRuntime::reset()
{
    setEnabled(false);
    std::lock_guard<std::mutex> lock(mu_);
    shields_.clear();
    every_n_ = 1;
    repair_on_detect_ = true;
    batches_seen_ = 0;
    batches_verified_ = 0;
    rows_verified_ = 0;
    detected_ = 0;
    repaired_ = 0;
}

void
IntegrityRuntime::onLookup(const void *key,
                           const std::vector<int64_t> &ids)
{
    // Runs before the forward's parallelFor, so the per-shield batch
    // counter (and thus which batches verify) is independent of the
    // worker thread count.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shields_.find(key);
    if (it == shields_.end())
        return;
    Entry &entry = it->second;
    ++batches_seen_;
    if (++entry.batches % every_n_ != 0)
        return;
    ++batches_verified_;
    std::vector<int64_t> rows(ids);
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    for (int64_t row : rows) {
        ++rows_verified_;
        if (entry.shield->verifyRow(row))
            continue;
        ++detected_;
        if (repair_on_detect_ && entry.shield->repairRow(row))
            ++repaired_;
    }
}

uint64_t
IntegrityRuntime::batchesSeen() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return batches_seen_;
}

uint64_t
IntegrityRuntime::batchesVerified() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return batches_verified_;
}

uint64_t
IntegrityRuntime::rowsVerified() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rows_verified_;
}

uint64_t
IntegrityRuntime::corruptionsDetected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return detected_;
}

uint64_t
IntegrityRuntime::rowsRepaired() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return repaired_;
}

void
IntegrityRuntime::exportTo(obs::MetricsRegistry &registry) const
{
    std::lock_guard<std::mutex> lock(mu_);
    registry.counter("integrity.inline.batches").add(batches_seen_);
    registry.counter("integrity.inline.verified_batches")
        .add(batches_verified_);
    registry.counter("integrity.inline.rows_verified")
        .add(rows_verified_);
    registry.counter("integrity.inline.detected").add(detected_);
    registry.counter("integrity.inline.repaired").add(repaired_);
}

} // namespace recperf
