#include "ops/sparse_lengths_sum.hh"

#include <numeric>

#include "core/logging.hh"
#include "core/rng.hh"

namespace recperf {

EmbeddingTable::EmbeddingTable(int64_t rows, int64_t dim)
    : rows_(rows), dim_(dim), table_({rows, dim})
{
    RP_ASSERT(rows > 0 && dim > 0,
              "embedding table dims must be positive, got %lld x %lld",
              static_cast<long long>(rows), static_cast<long long>(dim));
}

EmbeddingTable::EmbeddingTable(int64_t rows, int64_t dim, Rng &rng)
    : EmbeddingTable(rows, dim)
{
    float scale = 1.0f / static_cast<float>(dim);
    table_.fillUniform(rng, -0.5f * scale, 0.5f * scale);
}

Tensor
EmbeddingTable::forward(const std::vector<int64_t> &ids,
                        const std::vector<int64_t> &lengths,
                        SlsReduction reduction) const
{
    int64_t total = std::accumulate(lengths.begin(), lengths.end(),
                                    static_cast<int64_t>(0));
    RP_ASSERT(total == static_cast<int64_t>(ids.size()),
              "sum(lengths)=%lld != ids.size()=%zu",
              static_cast<long long>(total), ids.size());

    Tensor out({static_cast<int64_t>(lengths.size()), dim_});
    size_t cursor = 0;
    for (size_t slot = 0; slot < lengths.size(); ++slot) {
        RP_ASSERT(lengths[slot] >= 0, "negative length at slot %zu", slot);
        float *dst = out.data() + static_cast<int64_t>(slot) * dim_;
        for (int64_t j = 0; j < lengths[slot]; ++j) {
            int64_t id = ids[cursor++];
            RP_ASSERT(id >= 0 && id < rows_,
                      "sparse ID %lld out of table rows %lld",
                      static_cast<long long>(id),
                      static_cast<long long>(rows_));
            const float *src = table_.data() + id * dim_;
            for (int64_t c = 0; c < dim_; ++c)
                dst[c] += src[c];
        }
        if (reduction == SlsReduction::Mean && lengths[slot] > 0) {
            float inv = 1.0f / static_cast<float>(lengths[slot]);
            for (int64_t c = 0; c < dim_; ++c)
                dst[c] *= inv;
        }
    }
    return out;
}

OpCost
EmbeddingTable::cost(int64_t total_ids, int64_t outputs, int64_t dim)
{
    OpCost c;
    // One add per gathered element; negligible extra for Mean's scale.
    c.flops = static_cast<double>(total_ids) * static_cast<double>(dim);
    // Each gathered row is read from the table; IDs themselves are 8 B.
    c.bytesRead = static_cast<double>(total_ids) *
            static_cast<double>(dim) * sizeof(float) +
        static_cast<double>(total_ids) * sizeof(int64_t);
    c.bytesWritten = static_cast<double>(outputs) *
        static_cast<double>(dim) * sizeof(float);
    return c;
}

} // namespace recperf
