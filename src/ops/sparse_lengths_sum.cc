#include "ops/sparse_lengths_sum.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "backend/compute_backend.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "obs/trace.hh"
#include "ops/integrity.hh"
#include "ops/kernel_cache.hh"

namespace recperf {

EmbeddingTable::EmbeddingTable(int64_t rows, int64_t dim)
    : rows_(rows), dim_(dim), table_({rows, dim})
{
    RP_ASSERT(rows > 0 && dim > 0,
              "embedding table dims must be positive, got %lld x %lld",
              static_cast<long long>(rows), static_cast<long long>(dim));
}

EmbeddingTable::EmbeddingTable(int64_t rows, int64_t dim, Rng &rng)
    : EmbeddingTable(rows, dim)
{
    float scale = 1.0f / static_cast<float>(dim);
    table_.fillUniform(rng, -0.5f * scale, 0.5f * scale);
}

Tensor
EmbeddingTable::forward(const std::vector<int64_t> &ids,
                        const std::vector<int64_t> &lengths,
                        SlsReduction reduction) const
{
    obs::Tracer::Scope trace(obs::Tracer::global(), "op", "SLS::forward");
    int64_t total = std::accumulate(lengths.begin(), lengths.end(),
                                    static_cast<int64_t>(0));
    RP_ASSERT(total == static_cast<int64_t>(ids.size()),
              "sum(lengths)=%lld != ids.size()=%zu",
              static_cast<long long>(total), ids.size());

    // Inline sampled integrity verification: one relaxed load when the
    // runtime is disabled (the default), and serial — ahead of the
    // parallel fan-out — when on, so sampling stays deterministic
    // across thread counts.
    if (IntegrityRuntime::global().enabled())
        IntegrityRuntime::global().onLookup(this, ids);

    // Prefix offsets make each output slot independent, so the slot
    // loop fans out across the pool; each slot's gather keeps its
    // serial accumulation order (bitwise-identical at any thread
    // count). Length validation happens here, before the fan-out.
    int64_t slots = static_cast<int64_t>(lengths.size());
    std::vector<int64_t> offsets(static_cast<size_t>(slots) + 1, 0);
    for (int64_t slot = 0; slot < slots; ++slot) {
        RP_ASSERT(lengths[static_cast<size_t>(slot)] >= 0,
                  "negative length at slot %lld",
                  static_cast<long long>(slot));
        offsets[static_cast<size_t>(slot) + 1] =
            offsets[static_cast<size_t>(slot)] +
            lengths[static_cast<size_t>(slot)];
    }

    // The cache key buckets average pooling: the row-accumulate kernel
    // (vector tier + unroll) is what tuning picks, and element-wise
    // vertical adds keep every tier bit-identical to scalar.
    const KernelCache::SlsEntry &entry = activeBackend().slsKernel(
        dim_, poolingBucket(slots > 0 ? total / slots : 0),
        /*quantized=*/false);
    const microkernels::SlsAccumFn accum = entry.plan.fn;

    Tensor out({slots, dim_});
    // Aim for chunks of at least ~4K gathered floats.
    int64_t grain = std::max<int64_t>(
        1, 4096 / std::max<int64_t>(1, dim_));
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(0, slots, grain, [&](int64_t lo, int64_t hi) {
        for (int64_t slot = lo; slot < hi; ++slot) {
            size_t cursor =
                static_cast<size_t>(offsets[static_cast<size_t>(slot)]);
            int64_t len = lengths[static_cast<size_t>(slot)];
            float *dst = out.data() + slot * dim_;
            for (int64_t j = 0; j < len; ++j) {
                int64_t id = ids[cursor++];
                RP_ASSERT(id >= 0 && id < rows_,
                          "sparse ID %lld out of table rows %lld",
                          static_cast<long long>(id),
                          static_cast<long long>(rows_));
                accum(dst, table_.data() + id * dim_, dim_);
            }
            if (reduction == SlsReduction::Mean && len > 0) {
                float inv = 1.0f / static_cast<float>(len);
                for (int64_t c = 0; c < dim_; ++c)
                    dst[c] *= inv;
            }
        }
    });
    entry.recordCall(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    return out;
}

OpCost
EmbeddingTable::cost(int64_t total_ids, int64_t outputs, int64_t dim)
{
    OpCost c;
    // One add per gathered element; negligible extra for Mean's scale.
    c.flops = static_cast<double>(total_ids) * static_cast<double>(dim);
    // Each gathered row is read from the table; IDs themselves are 8 B.
    c.bytesRead = static_cast<double>(total_ids) *
            static_cast<double>(dim) * sizeof(float) +
        static_cast<double>(total_ids) * sizeof(int64_t);
    c.bytesWritten = static_cast<double>(outputs) *
        static_cast<double>(dim) * sizeof(float);
    return c;
}

} // namespace recperf
