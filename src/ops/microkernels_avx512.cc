/**
 * @file
 * AVX-512F microkernel tier: two independent 16-lane FMA chains per
 * output (stride 32 over K), fixed 512 -> 256 -> 128 -> 64 -> 32
 * reduction tree. Compiled with per-file -mavx512f -mfma; only
 * AVX512F intrinsics are used (the 256-bit half extraction goes
 * through extractf64x4, which F provides, rather than DQ's
 * extractf32x8), so the TU builds on any -mavx512f toolchain.
 */

#include "ops/microkernels_impl.hh"

#if defined(__AVX512F__)
#include <immintrin.h>

namespace recperf {
namespace microkernels {
namespace {

struct Avx512Ops
{
    using V = __m512;
    static constexpr int kLanes = 16;
    static constexpr int kAcc = 2;

    static V
    zero()
    {
        return _mm512_setzero_ps();
    }
    static V
    load(const float *p)
    {
        return _mm512_loadu_ps(p);
    }
    static V
    madd(V a, V b, V acc)
    {
        return _mm512_fmadd_ps(a, b, acc);
    }
    static V
    add(V a, V b)
    {
        return _mm512_add_ps(a, b);
    }
    static void
    store(float *p, V a)
    {
        _mm512_storeu_ps(p, a);
    }
    static float
    reduce(const V acc[kAcc])
    {
        const __m512 s = _mm512_add_ps(acc[0], acc[1]);
        const __m256 lo = _mm512_castps512_ps256(s);
        const __m256 hi = _mm256_castpd_ps(
            _mm512_extractf64x4_pd(_mm512_castps_pd(s), 1));
        const __m256 o = _mm256_add_ps(lo, hi);
        const __m128 q = _mm_add_ps(_mm256_castps256_ps128(o),
                                    _mm256_extractf128_ps(o, 1));
        const __m128 d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        const __m128 r =
            _mm_add_ss(d, _mm_shuffle_ps(d, d, _MM_SHUFFLE(1, 1, 1, 1)));
        return _mm_cvtss_f32(r);
    }
    static V
    broadcast(float x)
    {
        return _mm512_set1_ps(x);
    }
    static V
    loadU8(const uint8_t *p)
    {
        const __m128i bytes =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        return _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
    }
    static V
    dequantMadd(V v, V scale, V bias)
    {
        return _mm512_fmadd_ps(v, scale, bias);
    }
};

} // namespace

const IsaKernels &
avx512Kernels()
{
    static const IsaKernels kernels = detail::makeKernels<Avx512Ops>();
    return kernels;
}

} // namespace microkernels
} // namespace recperf

#else // !__AVX512F__

namespace recperf {
namespace microkernels {

const IsaKernels &
avx512Kernels()
{
    static const IsaKernels kernels; // available = false
    return kernels;
}

} // namespace microkernels
} // namespace recperf

#endif
