/**
 * @file
 * Pluggable compute backends: who executes an operator and who models
 * its cost.
 *
 * The paper's central finding is that embedding-dominated models
 * (RMC2) spend >80% of inference latency in memory-bound
 * SparseLengthsSum, which CPU caches cannot fix — RecNMP-style
 * near-memory lookup offload is the architectural answer. A
 * ComputeBackend owns both planes of that comparison:
 *
 *  - the *execution* plane: every op that runs real kernels (gemmBt,
 *    SLS, quantized SLS — and BMM/conv/LSTM, which all route through
 *    gemmBt) fetches its tuned kernel entry through the registered
 *    backend instead of touching KernelCache directly;
 *  - the *timing* plane: every OpTiming producer the ModelTimer used
 *    to own (FC residency model, simulated-cache SLS gather, concat /
 *    batch-MM / activation) is a backend method, so a backend can
 *    re-model any operator's cost without touching the timing layer.
 *
 * CpuBackend is backend #0: it wraps the existing kernel-cache/ISA
 * machinery and the verbatim ModelTimer cost model, so the default is
 * bitwise-identical to the pre-backend code (eval checksums, traces,
 * and metrics byte-equal). NmpBackend re-models SLS as a rank-level
 * near-memory engine (nmp_backend.hh).
 *
 * Determinism contract (DESIGN.md §16):
 *  - kernel *results* are a function of the ISA tier alone; both
 *    backends share one KernelCache, so SLS outputs are bit-identical
 *    across backends (near-memory lookup is data movement, not math);
 *  - every backend consumes the per-table ID-generator stream at the
 *    same rate (one draw per pooled row), so switching backends — or
 *    mixing placements — never shifts another table's trace;
 *  - timing state the backend may read lives in TimingContext; the
 *    only RNG a timing hook may draw from is ctx.contentionRng, in
 *    deterministic per-op order.
 */

#ifndef RECPERF_BACKEND_COMPUTE_BACKEND_HH
#define RECPERF_BACKEND_COMPUTE_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/config.hh"
#include "ops/kernel_cache.hh"
#include "timing/op_timing.hh"
#include "trace/id_generator.hh"

namespace recperf {

/** Registered backend families. */
enum class BackendKind
{
    Cpu = 0, ///< host SIMD execution + calibrated cache/roofline model
    Nmp = 1, ///< near-memory (PIM) SparseLengthsSum engine on top of Cpu
};

/** Stable lowercase name ("cpu" / "nmp"). */
const char *backendKindName(BackendKind kind);

/** Parse a backend name; false on unknown names. */
bool backendKindFromName(const std::string &name, BackendKind *out);

/** Which embedding tables the NMP engine owns. */
enum class NmpPlacement
{
    Auto = 0, ///< size/hotness policy decides per table
    All = 1,  ///< every table offloads (what-if upper bound)
    None = 2, ///< nothing offloads (backend plumbing, host behaviour)
};

const char *nmpPlacementName(NmpPlacement placement);
bool nmpPlacementFromName(const std::string &name, NmpPlacement *out);

/**
 * Near-memory engine model knobs (RecNMP/UPMEM-style). Defaults are
 * a conservative single-socket DIMM deployment: rank-level engines at
 * DDR4 per-rank bandwidth, commands and pooled results crossing a
 * host link that is fast but not free.
 */
struct NmpConfig
{
    /** PIM-enabled ranks ganged per socket (lookup concurrency). */
    uint32_t ranks = 8;

    /** In-rank gather bandwidth per rank (GB/s). */
    double rankGBps = 9.6;

    /** Per-row in-rank access overhead (activate + column access). */
    double rowAccessNs = 50.0;

    /** Host<->PIM command/result link bandwidth (GB/s). */
    double linkGBps = 12.0;

    /** Per-offloaded-op launch round trip (microseconds). */
    double launchUs = 2.0;

    /** Placement policy selector. */
    NmpPlacement placement = NmpPlacement::Auto;

    /** Auto placement: tables smaller than this stay on the host. */
    uint64_t minTableBytes = 1ull << 20;

    /**
     * Auto placement: tables whose storage fits within this fraction
     * of the tenant's LLC share stay on the host (their cold misses
     * are cache-fixable, so offload buys little and costs transfers).
     */
    double hostLlcFraction = 0.5;

    /** Empty when valid; else a description of the bad knob. */
    std::string validate() const;
};

/**
 * One validated backend selection: which backend family plus the CPU
 * kernel ISA policy (the NMP backend still runs FC/interaction on the
 * host, so the ISA plane applies to both).
 */
struct BackendConfig
{
    BackendKind kind = BackendKind::Cpu;
    IsaPolicy isa;
    NmpConfig nmp;
};

/**
 * Parse and validate "--backend=<name> --isa=<tier>" as one backend
 * spec. Returns "" and fills @p out on success, else a message naming
 * the bad component (callers exit 2 up front, before any kernel
 * runs). The ISA is validated against the tiers compiled into this
 * binary, exactly like the historical --isa flag.
 */
std::string backendConfigFromSpec(const std::string &backend_name,
                                  const std::string &isa_name,
                                  BackendConfig *out);

/**
 * Everything a timing hook may read or advance. Built fresh by
 * ModelTimer::run() so the hooks see exactly the state the verbatim
 * pre-backend code saw, in the same order.
 */
struct TimingContext
{
    const MachineSpec &machine;
    const ModelConfig &config;

    int64_t batch = 1;
    bool hyperthreading = false;
    size_t repeatWindow = 32768;

    /** The hierarchy gathers run through (owned or shared). */
    CacheHierarchy *hier = nullptr;
    uint32_t tenant = 0;
    uint64_t addressBase = 0;

    uint32_t activeTenants = 1;
    double otherDramBytesPerInf = 0.0;
    double lastDramBytes = 0.0;

    /** Burstiness draws for the FC refetch model (timeFc only). */
    Rng *contentionRng = nullptr;

    /** Per-table sparse-ID trace generators (timeSls advances them). */
    std::vector<std::unique_ptr<IdGenerator>> *tableGens = nullptr;

    /** Effective LLC bytes available to this tenant's FC weights. */
    double llcShareBytes() const
    {
        return static_cast<double>(machine.l3.sizeBytes) /
            static_cast<double>(activeTenants);
    }
};

/**
 * One compute backend: operator execution and cost modeling. Timing
 * hooks are pure given (context, args) except for the documented
 * stateful reads (cache hierarchy, ID generators, contention RNG).
 */
class ComputeBackend
{
  public:
    virtual ~ComputeBackend() = default;

    virtual BackendKind kind() const = 0;
    const char *name() const { return backendKindName(kind()); }

    /** The validated config this backend was built from. */
    const BackendConfig &config() const { return config_; }

    // ------------------------------------------------------------------
    // Execution plane. Kernel entries come from the shared shape-keyed
    // cache: results are a function of the ISA tier alone, so every
    // backend returns bit-identical numerics (DESIGN.md §14/§16). A
    // future backend with its own kernels overrides these.
    // ------------------------------------------------------------------

    /** Tuned kernel entry for GEMM shape (m, n, k). */
    virtual const KernelCache::GemmEntry &gemmKernel(int64_t m, int64_t n,
                                                     int64_t k) const;

    /** Tuned kernel entry for SLS shape (dim, pooling bucket, q?). */
    virtual const KernelCache::SlsEntry &slsKernel(int64_t dim,
                                                   int64_t pooling,
                                                   bool quantized) const;

    // ------------------------------------------------------------------
    // Timing plane: one hook per OpTiming producer.
    // ------------------------------------------------------------------

    virtual OpTiming timeFc(TimingContext &ctx, const std::string &name,
                            int64_t in, int64_t out) = 0;
    virtual OpTiming timeSls(TimingContext &ctx, size_t table_index) = 0;
    virtual OpTiming timeConcat(TimingContext &ctx) = 0;
    virtual OpTiming timeBatchMM(TimingContext &ctx) = 0;
    virtual OpTiming timeActivation(TimingContext &ctx,
                                    const std::string &name,
                                    int64_t elements) = 0;

  protected:
    explicit ComputeBackend(const BackendConfig &config)
        : config_(config)
    {
    }

    BackendConfig config_;
};

/** Build a backend instance for @p config (Cpu or Nmp). */
std::unique_ptr<ComputeBackend> makeBackend(const BackendConfig &config);

/**
 * Process-wide backend the execution plane dispatches through.
 * Defaults to CpuBackend with the auto ISA policy. setActiveBackend
 * also pins the KernelCache ISA policy to the config's, keeping the
 * two planes in agreement. Not thread-safe against concurrent kernel
 * calls — quiesce first (CLI startup / test setup), same contract as
 * KernelCache::setPolicy.
 */
ComputeBackend &activeBackend();
const BackendConfig &activeBackendConfig();
void setActiveBackend(const BackendConfig &config);

} // namespace recperf

#endif // RECPERF_BACKEND_COMPUTE_BACKEND_HH
