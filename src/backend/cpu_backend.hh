/**
 * @file
 * Backend #0: host SIMD execution with the calibrated cache/roofline
 * cost model.
 *
 * The timing hooks are the ModelTimer's original operator models,
 * moved verbatim: an FC residency/refetch model, the simulated-cache
 * SLS gather, and the analytic concat/batch-MM/activation terms. The
 * move is the bitwise-identity anchor of the backend refactor — a
 * CpuBackend run consumes the same RNG draws and the same hierarchy
 * accesses in the same order as the pre-backend code, so eval
 * checksums, traces, and metrics are byte-equal (tests/backend_test).
 */

#ifndef RECPERF_BACKEND_CPU_BACKEND_HH
#define RECPERF_BACKEND_CPU_BACKEND_HH

#include "backend/compute_backend.hh"

namespace recperf {

class CpuBackend : public ComputeBackend
{
  public:
    explicit CpuBackend(const BackendConfig &config)
        : ComputeBackend(config)
    {
    }

    BackendKind kind() const override { return BackendKind::Cpu; }

    OpTiming timeFc(TimingContext &ctx, const std::string &name,
                    int64_t in, int64_t out) override;
    OpTiming timeSls(TimingContext &ctx, size_t table_index) override;
    OpTiming timeConcat(TimingContext &ctx) override;
    OpTiming timeBatchMM(TimingContext &ctx) override;
    OpTiming timeActivation(TimingContext &ctx, const std::string &name,
                            int64_t elements) override;
};

} // namespace recperf

#endif // RECPERF_BACKEND_CPU_BACKEND_HH
