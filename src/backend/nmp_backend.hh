/**
 * @file
 * Backend #1: near-memory (PIM) SparseLengthsSum engine.
 *
 * Models a RecNMP/UPMEM-style deployment: rank-level lookup engines
 * inside the DIMMs gather and pool embedding rows at aggregate in-rank
 * bandwidth, and only the sparse IDs (up) and pooled vectors (down)
 * cross the host link. Dense operators (FC, interaction, activations)
 * still run on the host through the CpuBackend model, so the backend
 * isolates exactly the paper's bottleneck: RMC2's memory-bound SLS.
 *
 * Placement is per table. Host-resident tables time through the
 * inherited simulated-cache gather; offloaded tables never touch the
 * host hierarchy (dramLines = 0 — their bytes leave the DRAM roofline
 * ceiling entirely, which is what `recperf report` visualizes). Both
 * paths consume the per-table ID stream at one draw per pooled row, so
 * placement never shifts another table's trace (DESIGN.md §16).
 */

#ifndef RECPERF_BACKEND_NMP_BACKEND_HH
#define RECPERF_BACKEND_NMP_BACKEND_HH

#include "backend/cpu_backend.hh"

namespace recperf {

/**
 * Placement policy: does a table of @p storage_bytes offload under
 * @p config, given @p llc_share_bytes of effective host LLC? Exposed
 * for tests and for the CLI's placement report.
 */
bool nmpTableOffloaded(const NmpConfig &config, uint64_t storage_bytes,
                       double llc_share_bytes);

class NmpBackend : public CpuBackend
{
  public:
    explicit NmpBackend(const BackendConfig &config) : CpuBackend(config)
    {
    }

    BackendKind kind() const override { return BackendKind::Nmp; }

    OpTiming timeSls(TimingContext &ctx, size_t table_index) override;
};

} // namespace recperf

#endif // RECPERF_BACKEND_NMP_BACKEND_HH
