#include "backend/cpu_backend.hh"

#include <algorithm>
#include <cmath>

#include "backend/timing_shared.hh"
#include "core/aligned.hh"
#include "core/logging.hh"
#include "timing/model_timer.hh"

namespace recperf {

OpTiming
CpuBackend::timeFc(TimingContext &ctx, const std::string &name,
                   int64_t in, int64_t out)
{
    OpTiming t;
    t.kind = OpKind::FC;
    t.name = name;

    const double weight_bytes = static_cast<double>(in * out + out) * 4.0;
    const double act_bytes =
        static_cast<double>(ctx.batch * (in + out)) * 4.0;
    const double flops =
        2.0 * static_cast<double>(ctx.batch) * static_cast<double>(in) *
        static_cast<double>(out);

    // Steady-state residency: which level do the weights live in?
    HitLevel level;
    if (weight_bytes <= kL2UsableFrac *
            static_cast<double>(ctx.machine.l2.sizeBytes)) {
        level = HitLevel::L2;
    } else if (weight_bytes <= ctx.llcShareBytes()) {
        level = HitLevel::L3;
    } else {
        level = HitLevel::Memory;
    }

    // DRAM fills — other tenants' and this tenant's own embedding
    // traffic — displace part of the weight lines between consecutive
    // inferences.
    double refetch_frac = 0.0;
    if (level == HitLevel::L3) {
        // Capacity contention in the shared LLC. An exclusive LLC is
        // only filled by the (much slower) stream of L2 victims, so
        // displacement pressure is reduced.
        double pressure = ctx.otherDramBytesPerInf + ctx.lastDramBytes;
        if (ctx.machine.policy == InclusionPolicy::Exclusive)
            pressure *= 0.5;
        // The neighbours' fill traffic is bursty: how much of it lands
        // between two of this tenant's weight reuses varies inference
        // to inference. This burstiness is what blows up p99 latency
        // under heavy co-location (Fig 11) while p5 stays put.
        pressure *= std::exp(ctx.contentionRng->nextGaussian() * 0.6);
        refetch_frac = std::min(1.0, pressure / ctx.llcShareBytes());
    } else if (level == HitLevel::L2 &&
               ctx.machine.policy == InclusionPolicy::Inclusive) {
        // Inclusive back-invalidation: when an L3 line with an L2 copy
        // is evicted by another tenant's fill, the L2 copy dies too.
        double pressure = ctx.otherDramBytesPerInf *
            std::exp(ctx.contentionRng->nextGaussian() * 0.6);
        refetch_frac = std::min(
            1.0,
            pressure / static_cast<double>(ctx.machine.l3.sizeBytes));
    }

    double dram_queue = dramQueueFactor(ctx.activeTenants);
    double stream_seconds =
        ctx.machine.streamSeconds(level, weight_bytes) *
        (level == HitLevel::Memory ? dram_queue : 1.0);

    // Displacement refetches are latency-exposed: they hit in bursts
    // the prefetcher cannot anticipate, so — unlike steady streaming —
    // they do not hide under the compute roofline.
    double refetch_extra = refetch_frac * std::max(
        0.0, dram_queue *
                ctx.machine.streamSeconds(HitLevel::Memory, weight_bytes) -
            ctx.machine.streamSeconds(level, weight_bytes));

    // Activation traffic, from the private L2 (or LLC when large).
    HitLevel act_level = act_bytes <= 0.5 *
            static_cast<double>(ctx.machine.l2.sizeBytes)
        ? HitLevel::L2 : HitLevel::L3;
    stream_seconds += ctx.machine.streamSeconds(act_level, act_bytes);

    t.computeSeconds =
        flops / (ctx.machine.simd.achievedFlopsPerCycle(ctx.batch) *
                 ctx.machine.cyclesPerSecond());
    t.memorySeconds = stream_seconds + refetch_extra;
    t.dispatchSeconds = ctx.machine.dispatchSeconds(t.kind);
    t.instructions = vectorInstructions(flops, weight_bytes + act_bytes,
                                        simdLanes(ctx.machine.simd.isa)) +
        ctx.machine.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    t.cost.bytesRead = weight_bytes +
        static_cast<double>(ctx.batch * in) * 4.0;
    t.cost.bytesWritten = static_cast<double>(ctx.batch * out) * 4.0;

    double dram_bytes = refetch_frac * weight_bytes +
        (level == HitLevel::Memory ? weight_bytes : 0.0);
    t.dramLines = static_cast<uint64_t>(dram_bytes / kCacheLineBytes);
    uint64_t weight_lines =
        static_cast<uint64_t>(weight_bytes / kCacheLineBytes);
    if (level == HitLevel::L2)
        t.l2Lines = weight_lines;
    else if (level == HitLevel::L3)
        t.l3Lines = weight_lines - t.dramLines;

    double ht = ctx.hyperthreading ? kHtFcPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, stream_seconds) +
                 refetch_extra + t.dispatchSeconds) * ht;
    return t;
}

OpTiming
CpuBackend::timeSls(TimingContext &ctx, size_t table_index)
{
    OpTiming t;
    t.kind = OpKind::SLS;
    t.name = strprintf("SparseLengthsSum[%zu]", table_index);

    const int64_t dim = ctx.config.emb.embDim;
    const int64_t row_bytes = ctx.config.emb.rowBytes();
    const uint64_t lines_per_row =
        (static_cast<uint64_t>(row_bytes) + kCacheLineBytes - 1) /
        kCacheLineBytes;
    const int64_t rows = ctx.batch * ctx.config.emb.lookupsPerTable;
    const uint64_t table_base = ctx.addressBase +
        (static_cast<uint64_t>(table_index) + 1) * kTableRegionBytes;

    IdGenerator &gen = *(*ctx.tableGens)[table_index];
    uint64_t hits[4] = {0, 0, 0, 0};
    for (int64_t r = 0; r < rows; ++r) {
        uint64_t row_addr = table_base +
            static_cast<uint64_t>(gen.next()) *
                static_cast<uint64_t>(row_bytes);
        for (uint64_t l = 0; l < lines_per_row; ++l) {
            HitLevel level = ctx.hier->access(
                ctx.tenant, row_addr + l * kCacheLineBytes);
            ++hits[static_cast<int>(level)];
        }
    }

    t.l1Lines = hits[0];
    t.l2Lines = hits[1];
    t.l3Lines = hits[2];
    t.dramLines = hits[3];

    t.memorySeconds =
        ctx.machine.gatherSeconds(HitLevel::L1,
                                  static_cast<double>(hits[0])) +
        ctx.machine.gatherSeconds(HitLevel::L2,
                                  static_cast<double>(hits[1])) +
        ctx.machine.gatherSeconds(HitLevel::L3,
                                  static_cast<double>(hits[2])) +
        ctx.machine.gatherSeconds(HitLevel::Memory,
                                  static_cast<double>(hits[3]),
                                  ctx.batch) *
            dramQueueFactor(ctx.activeTenants) +
        static_cast<double>(rows) * kSlsPerRowCycles /
            ctx.machine.cyclesPerSecond();

    const double flops = static_cast<double>(rows) *
        static_cast<double>(dim);
    // Element-wise sums issue on the vector units but are latency-bound
    // behind the gathers; a quarter of peak is generous.
    t.computeSeconds = flops /
        (0.25 * ctx.machine.simd.peakFlopsPerCycle() *
         ctx.machine.cyclesPerSecond());
    t.dispatchSeconds = ctx.machine.dispatchSeconds(t.kind);
    t.instructions = static_cast<double>(rows) *
            (static_cast<double>(dim) /
                 simdLanes(ctx.machine.simd.isa) * 2.0 +
             8.0) +
        ctx.machine.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    // Row reads plus 8 B of sparse-ID metadata per row; one pooled
    // output vector per sample.
    t.cost.bytesRead = static_cast<double>(rows) *
        (static_cast<double>(row_bytes) + 8.0);
    t.cost.bytesWritten = static_cast<double>(ctx.batch) *
        static_cast<double>(dim) * 4.0;

    double ht = ctx.hyperthreading ? kHtSlsPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, t.memorySeconds) +
                 t.dispatchSeconds) * ht;
    return t;
}

OpTiming
CpuBackend::timeConcat(TimingContext &ctx)
{
    OpTiming t;
    t.kind = OpKind::Concat;
    t.name = "Concat";
    double bytes = static_cast<double>(ctx.batch) *
        static_cast<double>(ctx.config.topInputDim()) * 4.0 * 2.0;
    t.memorySeconds = ctx.machine.streamSeconds(HitLevel::L2, bytes);
    t.dispatchSeconds = ctx.machine.dispatchSeconds(t.kind);
    t.instructions = bytes / 32.0 + ctx.machine.dispatchCyclesFor(t.kind);
    t.cost.bytesRead = bytes * 0.5;
    t.cost.bytesWritten = bytes * 0.5;
    double ht = ctx.hyperthreading ? kHtSlsPenalty : 1.0;
    t.seconds = (t.memorySeconds + t.dispatchSeconds) * ht;
    return t;
}

OpTiming
CpuBackend::timeBatchMM(TimingContext &ctx)
{
    OpTiming t;
    t.kind = OpKind::BatchMM;
    t.name = "BatchMatMul";

    const int64_t f = ctx.config.featureCount();
    const int64_t d = ctx.config.emb.embDim;
    // Caffe2 computes the full f x f product per sample and slices the
    // triangle afterwards.
    const double flops = 2.0 * static_cast<double>(ctx.batch) *
        static_cast<double>(f) * static_cast<double>(f) *
        static_cast<double>(d);
    const double bytes = static_cast<double>(ctx.batch) *
        (static_cast<double>(f * d) * 4.0 +
         static_cast<double>(f * f) * 4.0);

    // The GEMM M-dimension is the feature count (tens), so wide-SIMD
    // register tiles fill according to f, not the request batch.
    t.computeSeconds = flops /
        (ctx.machine.simd.achievedFlopsPerCycle(f) *
         ctx.machine.cyclesPerSecond());
    t.memorySeconds = ctx.machine.streamSeconds(HitLevel::L2, bytes);
    t.dispatchSeconds = ctx.machine.dispatchSeconds(t.kind);
    t.instructions = vectorInstructions(flops, bytes,
                                        simdLanes(ctx.machine.simd.isa)) +
        ctx.machine.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    t.cost.bytesRead = static_cast<double>(ctx.batch) *
        static_cast<double>(f * d) * 4.0;
    t.cost.bytesWritten = static_cast<double>(ctx.batch) *
        static_cast<double>(f * f) * 4.0;

    double ht = ctx.hyperthreading ? kHtFcPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, t.memorySeconds) +
                 t.dispatchSeconds) * ht;
    return t;
}

OpTiming
CpuBackend::timeActivation(TimingContext &ctx, const std::string &name,
                           int64_t elements)
{
    OpTiming t;
    t.kind = OpKind::Activation;
    t.name = name;
    double flops = static_cast<double>(elements);
    double bytes = flops * 4.0 * 2.0;
    t.computeSeconds = flops /
        (0.5 * ctx.machine.simd.peakFlopsPerCycle() *
         ctx.machine.cyclesPerSecond());
    t.memorySeconds = ctx.machine.streamSeconds(HitLevel::L1, bytes);
    t.dispatchSeconds = ctx.machine.dispatchSeconds(t.kind);
    t.instructions = vectorInstructions(flops, bytes,
                                        simdLanes(ctx.machine.simd.isa)) +
        ctx.machine.dispatchCyclesFor(t.kind);
    t.cost.flops = flops;
    t.cost.bytesRead = flops * 4.0;
    t.cost.bytesWritten = flops * 4.0;
    double ht = ctx.hyperthreading ? kHtSlsPenalty : 1.0;
    t.seconds = (std::max(t.computeSeconds, t.memorySeconds) +
                 t.dispatchSeconds) * ht;
    return t;
}

} // namespace recperf
