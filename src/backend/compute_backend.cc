#include "backend/compute_backend.hh"

#include <mutex>

#include "backend/cpu_backend.hh"
#include "backend/nmp_backend.hh"
#include "core/logging.hh"
#include "ops/microkernels.hh"

namespace recperf {

const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Cpu: return "cpu";
      case BackendKind::Nmp: return "nmp";
    }
    return "unknown";
}

bool
backendKindFromName(const std::string &name, BackendKind *out)
{
    BackendKind kind;
    if (name == "cpu" || name.empty())
        kind = BackendKind::Cpu;
    else if (name == "nmp")
        kind = BackendKind::Nmp;
    else
        return false;
    if (out)
        *out = kind;
    return true;
}

const char *
nmpPlacementName(NmpPlacement placement)
{
    switch (placement) {
      case NmpPlacement::Auto: return "auto";
      case NmpPlacement::All: return "all";
      case NmpPlacement::None: return "none";
    }
    return "unknown";
}

bool
nmpPlacementFromName(const std::string &name, NmpPlacement *out)
{
    NmpPlacement placement;
    if (name == "auto" || name.empty())
        placement = NmpPlacement::Auto;
    else if (name == "all")
        placement = NmpPlacement::All;
    else if (name == "none")
        placement = NmpPlacement::None;
    else
        return false;
    if (out)
        *out = placement;
    return true;
}

std::string
NmpConfig::validate() const
{
    if (ranks < 1)
        return strprintf("nmp ranks must be >= 1 (got %u)", ranks);
    if (rankGBps <= 0.0)
        return strprintf("nmp rank bandwidth must be positive (got %g "
                         "GB/s)", rankGBps);
    if (rowAccessNs < 0.0)
        return strprintf("nmp row access latency cannot be negative "
                         "(got %g ns)", rowAccessNs);
    if (linkGBps <= 0.0)
        return strprintf("nmp link bandwidth must be positive (got %g "
                         "GB/s)", linkGBps);
    if (launchUs < 0.0)
        return strprintf("nmp launch latency cannot be negative (got %g "
                         "us)", launchUs);
    if (hostLlcFraction < 0.0 || hostLlcFraction > 1.0)
        return strprintf("nmp host-LLC fraction must be in [0, 1] (got "
                         "%g)", hostLlcFraction);
    return "";
}

std::string
backendConfigFromSpec(const std::string &backend_name,
                      const std::string &isa_name, BackendConfig *out)
{
    BackendConfig config;
    if (!backendKindFromName(backend_name, &config.kind)) {
        return "unknown backend '" + backend_name +
            "' (expected cpu|nmp)";
    }
    std::string err = isaPolicyFromName(isa_name, &config.isa);
    if (!err.empty())
        return err;
    if (!config.isa.autoSelect &&
        !microkernels::kernelsFor(config.isa.pinned).available) {
        return "ISA tier '" + isa_name +
            "' was not compiled into this binary";
    }
    if (out)
        *out = config;
    return "";
}

std::unique_ptr<ComputeBackend>
makeBackend(const BackendConfig &config)
{
    std::string err = config.nmp.validate();
    RP_ASSERT(err.empty(), "%s", err.c_str());
    if (config.kind == BackendKind::Nmp)
        return std::make_unique<NmpBackend>(config);
    return std::make_unique<CpuBackend>(config);
}

const KernelCache::GemmEntry &
ComputeBackend::gemmKernel(int64_t m, int64_t n, int64_t k) const
{
    return KernelCache::global().gemm(m, n, k);
}

const KernelCache::SlsEntry &
ComputeBackend::slsKernel(int64_t dim, int64_t pooling,
                          bool quantized) const
{
    return KernelCache::global().sls(dim, pooling, quantized);
}

namespace {

struct ActiveBackendState
{
    BackendConfig config;
    std::unique_ptr<ComputeBackend> backend;

    ActiveBackendState() : backend(makeBackend(config)) {}
};

ActiveBackendState &
activeState()
{
    static ActiveBackendState *state = new ActiveBackendState();
    return *state;
}

} // namespace

ComputeBackend &
activeBackend()
{
    return *activeState().backend;
}

const BackendConfig &
activeBackendConfig()
{
    return activeState().config;
}

void
setActiveBackend(const BackendConfig &config)
{
    ActiveBackendState &state = activeState();
    state.config = config;
    state.backend = makeBackend(config);
    // Keep the execution plane's ISA choice in lockstep: kernels fetch
    // through the backend, but the cache owns tuning and dispatch.
    KernelCache::global().setPolicy(config.isa);
}

} // namespace recperf
