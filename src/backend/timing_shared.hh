/**
 * @file
 * Calibration constants and micro-helpers shared by the backend cost
 * models (moved verbatim from the pre-backend ModelTimer).
 */

#ifndef RECPERF_BACKEND_TIMING_SHARED_HH
#define RECPERF_BACKEND_TIMING_SHARED_HH

#include <algorithm>
#include <cstdint>

namespace recperf {

// Address-space layout: each embedding table gets a 64 GB region below
// the tenant base so tables (and tenants) never alias cache lines.
constexpr uint64_t kTableRegionBytes = 1ull << 36;

// Fraction of the private L2 usable by FC weight panels (the rest is
// activations, IDs, and framework state).
constexpr double kL2UsableFrac = 0.8;

// Core cycles of per-row bookkeeping in the SLS inner loop (index
// loads, bounds handling, accumulation stalls). Scales with frequency,
// which is one reason the 2.0 GHz Skylake loses small-batch SLS to the
// 2.4 GHz Broadwell despite its faster DRAM.
constexpr double kSlsPerRowCycles = 10.0;

// Memory-controller queueing under co-location: every additional
// active tenant adds a small delay to DRAM-serviced requests, up to 2x.
inline double
dramQueueFactor(uint32_t active_tenants)
{
    return std::min(2.0, 1.0 + 0.04 * (active_tenants - 1));
}

// Instruction-count model: IPC-1 dispatch plus vector loads/FMAs.
inline double
vectorInstructions(double flops, double bytes, int lanes)
{
    return flops / (2.0 * lanes) + bytes / 32.0;
}

} // namespace recperf

#endif // RECPERF_BACKEND_TIMING_SHARED_HH
