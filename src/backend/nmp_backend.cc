#include "backend/nmp_backend.hh"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/logging.hh"

namespace recperf {

bool
nmpTableOffloaded(const NmpConfig &config, uint64_t storage_bytes,
                  double llc_share_bytes)
{
    switch (config.placement) {
      case NmpPlacement::All:
        return true;
      case NmpPlacement::None:
        return false;
      case NmpPlacement::Auto:
        break;
    }
    // Small or cache-fixable tables stay on the host: once their hot
    // rows live in the LLC the host gather is already cheap, and
    // offloading would only add link transfers and launch latency.
    if (storage_bytes < config.minTableBytes)
        return false;
    return static_cast<double>(storage_bytes) >
        config.hostLlcFraction * llc_share_bytes;
}

OpTiming
NmpBackend::timeSls(TimingContext &ctx, size_t table_index)
{
    const int64_t row_bytes = ctx.config.emb.rowBytes();
    const uint64_t storage_bytes =
        static_cast<uint64_t>(
            ctx.config.emb.rowsOf(static_cast<int64_t>(table_index))) *
        static_cast<uint64_t>(row_bytes);
    if (!nmpTableOffloaded(config_.nmp, storage_bytes,
                           ctx.llcShareBytes()))
        return CpuBackend::timeSls(ctx, table_index);

    OpTiming t;
    t.kind = OpKind::SLS;
    t.name = strprintf("NMP-SparseLengthsSum[%zu]", table_index);

    const NmpConfig &nmp = config_.nmp;
    const int64_t dim = ctx.config.emb.embDim;
    const int64_t rows = ctx.batch * ctx.config.emb.lookupsPerTable;

    // Consume the table's ID stream at the same rate as the host path
    // (one draw per pooled row) and spread the lookups across the PIM
    // ranks the way a physical layout would: a row lives in one rank,
    // chosen by a multiplicative hash of its ID. Duplicate IDs within
    // one offloaded op are coalesced — a RecNMP-style engine memoizes
    // the row after its first read and folds repeats into the running
    // sum — which is exactly what defuses the Zipf-hot-row rank
    // imbalance (every copy of a hot ID lands on the same rank).
    IdGenerator &gen = *(*ctx.tableGens)[table_index];
    std::vector<uint64_t> per_rank(nmp.ranks, 0);
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
        uint64_t id = static_cast<uint64_t>(gen.next());
        if (!seen.insert(id).second)
            continue;
        uint64_t h = (id + 1) * 0x9E3779B97F4A7C15ull;
        per_rank[(h >> 32) % nmp.ranks] += 1;
    }

    // In-rank gather: each rank reads its share of rows at its own
    // bandwidth plus a fixed activate/column overhead per row; the op
    // completes when the most-loaded rank drains.
    const double row_seconds =
        static_cast<double>(row_bytes) / (nmp.rankGBps * 1e9) +
        nmp.rowAccessNs * 1e-9;
    uint64_t max_rank_rows = 0;
    for (uint64_t rank_rows : per_rank)
        max_rank_rows = std::max(max_rank_rows, rank_rows);
    const double gather_seconds =
        static_cast<double>(max_rank_rows) * row_seconds;

    // Host link: sparse IDs up (8 B each, with the launch round trip),
    // one pooled fp32 vector per sample down.
    const double upload_bytes = static_cast<double>(rows) * 8.0;
    const double download_bytes = static_cast<double>(ctx.batch) *
        static_cast<double>(dim) * 4.0;
    const double upload_seconds = nmp.launchUs * 1e-6 +
        upload_bytes / (nmp.linkGBps * 1e9);
    const double download_seconds = download_bytes / (nmp.linkGBps * 1e9);

    t.offloadSeconds = gather_seconds;
    t.transferBytes = static_cast<uint64_t>(upload_bytes) +
        static_cast<uint64_t>(download_bytes);
    t.memorySeconds = upload_seconds + download_seconds;
    t.dispatchSeconds = ctx.machine.dispatchSeconds(t.kind);

    // The host core only marshals IDs and receives pooled vectors — no
    // hierarchy traffic (dramLines stays 0), no SMT contention on the
    // gather, and an instruction stream that is just the marshaling.
    t.instructions = static_cast<double>(rows) * 2.0 +
        ctx.machine.dispatchCyclesFor(t.kind);

    const double flops = static_cast<double>(rows) *
        static_cast<double>(dim);
    t.cost.flops = flops;
    t.cost.bytesRead = static_cast<double>(rows) *
        (static_cast<double>(row_bytes) + 8.0);
    t.cost.bytesWritten = download_bytes;

    t.seconds = upload_seconds + gather_seconds + download_seconds +
        t.dispatchSeconds;
    return t;
}

} // namespace recperf
