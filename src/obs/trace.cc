#include "obs/trace.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "core/logging.hh"
#include "core/thread_pool.hh"

namespace recperf {
namespace obs {

namespace {

/** Pool chunk hook: one wall span per executed parallelFor chunk. */
void
poolChunkToTrace(int64_t lo, int64_t hi,
                 std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1)
{
    Tracer::global().wallSpanAt(
        "pool", strprintf("chunk [%lld, %lld)", static_cast<long long>(lo),
                          static_cast<long long>(hi)),
        t0, t1);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** True when @p v is a plain JSON number (emit unquoted). */
bool
looksNumeric(const std::string &v)
{
    if (v.empty())
        return false;
    size_t i = v[0] == '-' ? 1 : 0;
    if (i >= v.size())
        return false;
    bool digit = false, dot = false, exp = false;
    for (; i < v.size(); ++i) {
        char c = v[i];
        if (std::isdigit(static_cast<unsigned char>(c))) {
            digit = true;
        } else if (c == '.' && !dot && !exp) {
            dot = true;
        } else if ((c == 'e' || c == 'E') && digit && !exp) {
            exp = true;
            if (i + 1 < v.size() && (v[i + 1] == '+' || v[i + 1] == '-'))
                ++i;
        } else {
            return false;
        }
    }
    return digit;
}

void
appendEventJson(std::string &out, const TraceEvent &ev)
{
    out += strprintf("{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
                     "\"ts\": %.3f, ",
                     jsonEscape(ev.name).c_str(), ev.cat, ev.ph, ev.tsUs);
    if (ev.ph == 'X')
        out += strprintf("\"dur\": %.3f, ", ev.durUs);
    if (ev.ph == 'i')
        out += "\"s\": \"t\", ";
    out += strprintf("\"pid\": 1, \"tid\": %u", ev.tid);
    if (!ev.args.empty()) {
        out += ", \"args\": {";
        bool first = true;
        for (const auto &[k, v] : ev.args) {
            out += strprintf("%s\"%s\": ", first ? "" : ", ",
                             jsonEscape(k).c_str());
            if (looksNumeric(v))
                out += v;
            else
                out += "\"" + jsonEscape(v) + "\"";
            first = false;
        }
        out += "}";
    }
    out += "}";
}

} // namespace

Tracer &
Tracer::global()
{
    static Tracer *tracer = new Tracer();
    return *tracer;
}

void
Tracer::setEnabled(bool on)
{
    if (on)
        wall_epoch_ = std::chrono::steady_clock::now();
    enabled_.store(on, std::memory_order_relaxed);
    // The pool hook is only installed while tracing so the untraced
    // pool never pays for clock reads.
    if (this == &global())
        setPoolChunkHook(on ? &poolChunkToTrace : nullptr);
}

double
Tracer::wallSeconds() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         wall_epoch_)
        .count();
}

Tracer::Buffer *
Tracer::buffer()
{
    struct Slot
    {
        Tracer *tracer = nullptr;
        std::shared_ptr<Buffer> buf;
    };
    thread_local Slot slot;
    if (slot.tracer != this || !slot.buf) {
        auto fresh = std::make_shared<Buffer>();
        {
            std::lock_guard<std::mutex> lock(mu_);
            buffers_.push_back(fresh);
        }
        slot.tracer = this;
        slot.buf = std::move(fresh);
    }
    return slot.buf.get();
}

uint32_t
Tracer::wallTid()
{
    struct Slot
    {
        Tracer *tracer = nullptr;
        uint32_t tid = 0;
    };
    thread_local Slot slot;
    if (slot.tracer != this) {
        std::lock_guard<std::mutex> lock(mu_);
        slot.tracer = this;
        slot.tid = next_wall_tid_++;
    }
    return slot.tid;
}

void
Tracer::emit(TraceEvent ev)
{
    Buffer *buf = buffer();
    ev.seq = buf->next_seq++;
    buf->events.push_back(std::move(ev));
}

void
Tracer::span(const char *cat, std::string name, double t0_seconds,
             double t1_seconds, uint32_t tid,
             std::vector<std::pair<std::string, std::string>> args)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'X';
    ev.tsUs = t0_seconds * 1e6;
    ev.durUs = (t1_seconds - t0_seconds) * 1e6;
    ev.tid = tid;
    ev.args = std::move(args);
    emit(std::move(ev));
}

void
Tracer::instant(const char *cat, std::string name, double t_seconds,
                uint32_t tid,
                std::vector<std::pair<std::string, std::string>> args)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'i';
    ev.tsUs = t_seconds * 1e6;
    ev.tid = tid;
    ev.args = std::move(args);
    emit(std::move(ev));
}

void
Tracer::counter(const char *cat, std::string name, double t_seconds,
                uint32_t tid, double value)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'C';
    ev.tsUs = t_seconds * 1e6;
    ev.tid = tid;
    ev.args.emplace_back("value", strprintf("%.9g", value));
    emit(std::move(ev));
}

void
Tracer::wallSpanAt(const char *cat, std::string name,
                   std::chrono::steady_clock::time_point t0,
                   std::chrono::steady_clock::time_point t1)
{
    if (!enabled())
        return;
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'X';
    ev.tsUs = std::chrono::duration<double, std::micro>(t0 - wall_epoch_)
                  .count();
    ev.durUs = std::chrono::duration<double, std::micro>(t1 - t0).count();
    ev.tid = wallTid();
    emit(std::move(ev));
}

void
Tracer::wallSpan(const char *cat, const char *name, double t0)
{
    // Checked enabled() at scope construction; a race with disable just
    // records one extra event, which is harmless.
    double t1 = wallSeconds();
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.ph = 'X';
    ev.tsUs = t0 * 1e6;
    ev.durUs = (t1 - t0) * 1e6;
    ev.tid = wallTid();
    emit(std::move(ev));
}

void
Tracer::nameLane(uint32_t tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    lane_names_[tid] = name;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> all;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &buf : buffers_) {
            all.insert(all.end(), buf->events.begin(),
                       buf->events.end());
        }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         // Parent-before-child at equal start: the
                         // longer span encloses the shorter one.
                         if (a.durUs != b.durUs)
                             return a.durUs > b.durUs;
                         return a.seq < b.seq;
                     });
    return all;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &buf : buffers_)
        buf->events.clear();
}

std::string
Tracer::toJson() const
{
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[tid, name] : lane_names_) {
            out += strprintf("%s{\"name\": \"thread_name\", \"ph\": \"M\", "
                             "\"pid\": 1, \"tid\": %u, \"args\": "
                             "{\"name\": \"%s\"}}",
                             first ? "" : ",\n", tid,
                             jsonEscape(name).c_str());
            first = false;
        }
    }
    for (const TraceEvent &ev : snapshot()) {
        out += first ? "" : ",\n";
        appendEventJson(out, ev);
        first = false;
    }
    out += "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
           "{\"producer\": \"recperf::obs\", \"schema_version\": 1}}\n";
    return out;
}

bool
Tracer::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        RP_WARN("cannot open trace output '%s'", path.c_str());
        return false;
    }
    std::string json = toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
}

} // namespace obs
} // namespace recperf
