/**
 * @file
 * Per-request causal records and tail-latency attribution.
 *
 * Aggregate telemetry (metrics, traces, burn-rate gauges) says *that*
 * the p99 blew past the SLO; it cannot say *which* requests paid it or
 * which mechanism charged them. This module carries one compact
 * RequestRecord per request through Server::runOpenLoop and
 * ShardedInference::run, logging phase durations in virtual time
 * (queue wait, clean service, straggler inflation, retries, hedges,
 * warm-up, scrub tax, network, aggregation) plus the cause tags that
 * explain them (admission estimate, replica chosen + health EWMA,
 * breaker rejects, hedge fired/won, retry count, brownout level,
 * deadline clamps, offload bytes).
 *
 * Invariants:
 *  - every record's phase durations tile its latency exactly (the
 *    phases are a decomposition of the span, not samples of it);
 *  - recording rides the deterministic virtual clocks, so with a fixed
 *    seed the log is bit-identical across host thread counts, like the
 *    virtual trace lanes;
 *  - off by default; every emission site checks one relaxed atomic
 *    flag, and a disabled run's other exports are byte-identical to a
 *    build without this module.
 *
 * On top of the raw log sit windowed slowest-k / per-decile exemplar
 * reservoirs, and a blame decomposition of the p99-p50 gap: over the
 * tail (served records slower than p50) each record contributes its
 * phase vector weighted by excess/latency, and the per-cause mass is
 * normalized into blame fractions that sum to 1 by construction.
 * `recperf explain` reconstructs all of this from the JSONL log alone.
 */

#ifndef RECPERF_OBS_REQUEST_LOG_HH
#define RECPERF_OBS_REQUEST_LOG_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace recperf {
namespace obs {

/** Causes a request's latency decomposes into (virtual seconds). */
enum class RequestPhase : uint8_t
{
    Queue = 0,      ///< arrival to batch dispatch (serve path)
    Service,        ///< clean compute time (no faults, no warm-up)
    Straggler,      ///< co-located service inflation (serve path)
    ShardStraggler, ///< slowest-shard excess over the fastest shard
    Retry,          ///< fail-fast waits, timeouts, backoff
    Hedge,          ///< hedge-delay waits on the critical path
    Warmup,         ///< cold-replica warm-up inflation
    Scrub,          ///< SDC scrub slowdown + inline-verify + guard tax
    Network,        ///< shard fan-out network hop
    Aggregate,      ///< top-FC aggregation after the merge
};

constexpr size_t kNumRequestPhases = 10;

/** Stable JSON name of a phase ("queue", "shard_straggler", ...). */
const char *requestPhaseName(RequestPhase phase);

/** How a request left the system. */
enum class RequestOutcome : uint8_t
{
    Served = 0,            ///< completed and delivered
    ShedAdmission,         ///< wait budget exceeded at admission
    ShedAdmissionDeadline, ///< deadline below the service estimate
    ShedDeadlineQueue,     ///< deadline expired while queued
    Cancelled,             ///< cancelled mid-flight past its deadline
    DroppedLowPriority,    ///< dropped by degraded mode
    Failed,                ///< retries exhausted (shard path)
};

constexpr size_t kNumRequestOutcomes = 7;

/** Stable JSON name of an outcome ("served", "cancelled", ...). */
const char *requestOutcomeName(RequestOutcome outcome);

/** Parse an outcome name; false when unknown. */
bool parseRequestOutcome(const std::string &name, RequestOutcome *out);

/**
 * One request's causal record. Plain data, no allocation: the serving
 * loops fill one on the stack and hand it to RequestLogger::record.
 */
struct RequestRecord
{
    uint64_t id = 0;        ///< arrival index within the run
    double arrival = 0.0;   ///< virtual arrival time (seconds)
    double start = 0.0;     ///< dispatch time (= arrival on shard path)
    double finish = 0.0;    ///< completion / abandonment time
    double latency = 0.0;   ///< finish - arrival; tiled by phase[]

    RequestOutcome outcome = RequestOutcome::Served;
    uint8_t brownoutLevel = 0;   ///< ladder level the item served at
    bool degraded = false;       ///< degraded-mode batch cap applied
    bool slaViolated = false;    ///< end-to-end SLA missed
    bool deadlineClamped = false;///< deadline bounded a shard timeout
    bool hedgeWon = false;       ///< a hedge beat the primary attempt

    uint16_t retries = 0;        ///< retry attempts across shards
    uint16_t hedges = 0;         ///< hedges fired across shards
    uint16_t hedgeWins = 0;      ///< hedges that won across shards
    int32_t replica = -1;        ///< replica serving the critical shard
    int32_t criticalShard = -1;  ///< slowest (latency-defining) shard
    uint32_t batchItems = 0;     ///< batch size the item rode in
    uint32_t breakerRejects = 0; ///< circuit-breaker fast-rejects

    float admissionEstimate = 0.0f; ///< service estimate at admission
    float healthEwma = 0.0f;        ///< critical replica's health EWMA
    double offloadBytes = 0.0;      ///< NMP link bytes moved

    double phase[kNumRequestPhases] = {};

    double phaseSum() const
    {
        double s = 0.0;
        for (size_t i = 0; i < kNumRequestPhases; ++i)
            s += phase[i];
        return s;
    }
};

/** Logger capacity and exemplar-reservoir configuration. */
struct RequestLogOptions
{
    /** Record capacity; later records drop (and count) beyond this. */
    size_t capacity = 1 << 20;

    /** Slowest-k exemplar reservoir size. */
    int slowestK = 4;

    /** Exemplars kept per latency decile. */
    int perDecile = 2;

    /**
     * Slowest-k window (virtual seconds before the last finish);
     * 0 means the whole run.
     */
    double windowSeconds = 0.0;
};

/** Blame decomposition of the p99-p50 gap over served records. */
struct TailAttribution
{
    uint64_t served = 0; ///< served records the quantiles are over
    double p50 = 0.0;    ///< median served latency (seconds)
    double p99 = 0.0;    ///< p99 served latency (seconds)
    double gap = 0.0;    ///< p99 - p50

    /** Excess-weighted virtual seconds charged to each cause. */
    double mass[kNumRequestPhases] = {};

    /** mass normalized to sum to 1 (all Service when no tail). */
    double blame[kNumRequestPhases] = {};

    /** Total excess-weighted mass across causes. */
    double excessMass = 0.0;
};

/**
 * Decompose the p99-p50 gap of @p records into per-cause blame.
 *
 * Only served records participate. Tail records are those with
 * latency > p50; each contributes phase[c] * (latency - p50) / latency
 * to cause c's mass, and blame is mass normalized across causes. When
 * there is no tail mass (uniform latencies, empty log) the whole blame
 * lands on Service so the fractions still sum to 1.
 */
TailAttribution attributeTail(const std::vector<RequestRecord> &records);

/**
 * Process-wide request logger. Use global() everywhere; tests may
 * construct private instances.
 */
class RequestLogger
{
  public:
    RequestLogger() = default;
    RequestLogger(const RequestLogger &) = delete;
    RequestLogger &operator=(const RequestLogger &) = delete;

    static RequestLogger &global();

    void setEnabled(bool on);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Install options and clear all captured state. */
    void configure(const RequestLogOptions &options);

    /** Clear captured state; options survive. */
    void reset();

    /** Append one record (drops and counts beyond capacity). */
    void record(const RequestRecord &rec);

    /** Records currently buffered, in arrival order. */
    std::vector<RequestRecord> records() const;

    size_t size() const;

    /** Records offered since reset (including dropped ones). */
    uint64_t recorded() const;

    /** Records lost to the capacity cap. */
    uint64_t dropped() const;

    const RequestLogOptions &options() const { return options_; }

    /**
     * Slowest-k served records within the trailing window (latency
     * descending, id ascending on ties). Fewer than k when the window
     * holds fewer served records.
     */
    std::vector<RequestRecord> slowestExemplars() const;

    /**
     * Up to perDecile served records per latency decile (latency
     * ascending), so `recperf explain` can show a Fig 11-style
     * distribution from a handful of lines.
     */
    std::vector<RequestRecord> decileExemplars() const;

    /** Blame decomposition over the buffered records. */
    TailAttribution attribution() const;

    /** Full log: one JSON object per line, stable key order. */
    std::string toJsonl() const;

    /** Write toJsonl() to @p path; false (with a warning) on failure. */
    bool writeFile(const std::string &path) const;

    /** Slowest-k + decile exemplars as JSONL (deduplicated, id asc). */
    std::string exemplarsJsonl() const;

    /** Write exemplarsJsonl() to @p path. */
    bool writeExemplars(const std::string &path) const;

    /**
     * Publish tail.* metrics: requests recorded/dropped counters,
     * p50/p99/gap gauges, one tail.blame.<cause> gauge per cause with
     * nonzero mass, and the slowest exemplar latencies. Only called by
     * the CLI when logging ran, so disabled runs export byte-identical
     * metric sets.
     */
    void exportTo(MetricsRegistry &registry) const;

  private:
    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    RequestLogOptions options_;
    std::vector<RequestRecord> records_;
    uint64_t recorded_ = 0;
    uint64_t dropped_ = 0;
};

/** One record as a single-line JSON object (stable key order). */
std::string requestRecordJson(const RequestRecord &rec);

/**
 * Parse a request-log JSONL back into records. Strict: every
 * non-empty line must be a JSON object carrying id / outcome /
 * arrival / start / finish / latency_s / phases with known phase and
 * outcome names, and an empty log is an error. Returns false and
 * fills @p error (with a line number) on the first violation.
 */
bool parseRequestLog(const std::string &jsonl,
                     std::vector<RequestRecord> *out, std::string *error);

/** Inputs to renderExplain; empty strings mean "artifact not given". */
struct ExplainInputs
{
    std::string requestLogJsonl; ///< --request-log contents (required)
    std::string metricsJson;     ///< optional --metrics join
    int top = 4;                 ///< exemplar timelines to render
};

/**
 * Render the `recperf explain` view from a request log alone: the
 * blame attribution table, the top-k slowest exemplar timelines, and
 * a per-decile tail decomposition. With a metrics export the exported
 * tail.blame.* gauges are cross-checked against the recomputed blame.
 * Returns "" and fills @p error on malformed input or a cross-check
 * mismatch.
 */
std::string renderExplain(const ExplainInputs &inputs, std::string &error);

/**
 * Validate request-log CLI knobs; returns "" when valid, else the
 * message the CLI prints before exiting 2. @p haveSink is whether
 * --request-log-out or --exemplars-out was given; @p kSet /
 * @p windowSet whether the tuning knobs were explicitly set.
 */
std::string validateRequestLogArgs(int slowestK, double windowSeconds,
                                   bool haveSink, bool kSet,
                                   bool windowSet);

} // namespace obs
} // namespace recperf

#endif // RECPERF_OBS_REQUEST_LOG_HH
