/**
 * @file
 * End-of-run report rendering from observability artifacts.
 *
 * `recperf report` turns the machine-readable artifacts a run leaves
 * behind (--metrics-out JSON, --trace-out Chrome trace, and
 * --timeseries-out JSONL) back into the paper's tables: latency
 * percentiles (Fig 11), the operator cycle breakdown (Fig 4/7),
 * per-level cache MPKI (Fig 5), and a roofline placement per operator
 * kind (Fig 2). Every input is optional — sections render only when
 * the artifact that feeds them is present.
 *
 * The JSON reader is a deliberately small recursive-descent parser for
 * the subset our own writers emit (objects, arrays, strings, numbers,
 * booleans, null); it is exposed here so tests can parse artifacts too.
 */

#ifndef RECPERF_OBS_REPORT_HH
#define RECPERF_OBS_REPORT_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace recperf {
namespace obs {

/** One parsed JSON value (object keys keep document order). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    /** Member lookup on an object; nullptr when absent or not one. */
    const JsonValue *find(const std::string &key) const;

    /** number for Number, 0 otherwise (with @p fallback override). */
    double asNumber(double fallback = 0.0) const
    {
        return kind == Kind::Number ? number : fallback;
    }
};

/**
 * Parse @p text into @p out. Returns false and fills @p error (with a
 * byte offset) on malformed input; @p out is unspecified then.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string &error);

/** Inputs to renderReport; empty strings mean "artifact not given". */
struct ReportInputs
{
    std::string metricsJson;     ///< --metrics-out contents
    std::string traceJson;       ///< --trace-out contents
    std::string timeseriesJsonl; ///< --timeseries-out contents
};

/**
 * Render the human-readable run report. Returns the report text; on a
 * malformed artifact returns an empty string and fills @p error.
 */
std::string renderReport(const ReportInputs &inputs, std::string &error);

} // namespace obs
} // namespace recperf

#endif // RECPERF_OBS_REPORT_HH
