/**
 * @file
 * Op-level tracer emitting Chrome trace-event JSON (open the file in
 * Perfetto or chrome://tracing).
 *
 * Two time domains share one event stream:
 *
 *  - *virtual time*: the serving/sharding simulations advance a
 *    deterministic simulated clock; spans carry those timestamps
 *    directly, so a trace of `recperf serve` is bit-identical across
 *    runs and thread counts. Virtual lanes are small tids chosen by
 *    the emitter (queue, workers, shards, ...).
 *  - *wall clock*: the real execution engine (tensor ops, thread-pool
 *    workers) records RAII scopes against a steady-clock epoch taken
 *    when tracing is enabled. Wall lanes are per-OS-thread tids in a
 *    distinct range (>= kWallTidBase).
 *
 * Tracing is off by default. Every emission site first checks one
 * relaxed atomic flag, so the disabled path costs a load and a
 * predictable branch — the "near-zero overhead" contract DESIGN.md §11
 * documents and obs_test enforces.
 *
 * Events are buffered per thread (mutex only on buffer registration)
 * and merged on snapshot()/writeFile(), sorted by timestamp with a
 * per-buffer sequence number breaking ties, so single-threaded virtual
 * traces serialize deterministically.
 */

#ifndef RECPERF_OBS_TRACE_HH
#define RECPERF_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace recperf {
namespace obs {

/** One trace event (Chrome trace-event "X", "i", or "C" phase). */
struct TraceEvent
{
    std::string name;
    const char *cat = "";   ///< static category string
    char ph = 'X';          ///< 'X' complete span, 'i' instant, 'C' counter
    double tsUs = 0.0;      ///< microseconds since trace epoch
    double durUs = 0.0;     ///< span duration ('X' only)
    uint32_t tid = 0;       ///< lane
    uint64_t seq = 0;       ///< per-buffer emission order (tie-break)
    /** Small key/value payload; values are emitted as JSON strings
     *  unless they parse as a plain number. */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Process-wide tracer. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    static Tracer &global();

    /**
     * Turn tracing on or off. Enabling (re)sets the wall-clock epoch
     * and installs the thread-pool chunk hook (removed again on
     * disable); previously buffered events are kept until clear().
     */
    void setEnabled(bool on);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** First wall tid; virtual lanes must stay below this. */
    static constexpr uint32_t kWallTidBase = 1000;

    /**
     * Complete span in *virtual* time: [t0, t1] in simulated seconds on
     * lane @p tid. No-op when disabled.
     */
    void span(const char *cat, std::string name, double t0_seconds,
              double t1_seconds, uint32_t tid,
              std::vector<std::pair<std::string, std::string>> args = {});

    /** Instant event in virtual time. No-op when disabled. */
    void instant(const char *cat, std::string name, double t_seconds,
                 uint32_t tid,
                 std::vector<std::pair<std::string, std::string>> args = {});

    /** Counter sample in virtual time (renders as a track). */
    void counter(const char *cat, std::string name, double t_seconds,
                 uint32_t tid, double value);

    /**
     * Name a lane ("thread_name" metadata in the JSON). Idempotent;
     * works whether or not tracing is currently enabled.
     */
    void nameLane(uint32_t tid, const std::string &name);

    /** Seconds since the wall epoch (set by setEnabled(true)). */
    double wallSeconds() const;

    /**
     * Wall-clock span from explicit steady-clock endpoints on the
     * calling thread's wall lane (used by the pool chunk hook, which
     * timestamps outside the tracer). No-op when disabled.
     */
    void wallSpanAt(const char *cat, std::string name,
                    std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point t1);

    /** Lane for the calling OS thread (>= kWallTidBase, stable). */
    uint32_t wallTid();

    /**
     * RAII wall-clock span. Construction with tracing disabled costs
     * one relaxed atomic load.
     */
    class Scope
    {
      public:
        Scope(Tracer &tracer, const char *cat, const char *name)
        {
            if (tracer.enabled()) {
                tracer_ = &tracer;
                cat_ = cat;
                name_ = name;
                t0_ = tracer.wallSeconds();
            }
        }
        ~Scope()
        {
            if (tracer_)
                tracer_->wallSpan(cat_, name_, t0_);
        }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Tracer *tracer_ = nullptr;
        const char *cat_ = "";
        const char *name_ = "";
        double t0_ = 0.0;
    };

    /** Merged, deterministically ordered view of all buffered events. */
    std::vector<TraceEvent> snapshot() const;

    /** Drop all buffered events (lane names survive). */
    void clear();

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    std::string toJson() const;

    /** Write toJson() to @p path; false (with a warning) on failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Buffer
    {
        std::vector<TraceEvent> events;
        uint64_t next_seq = 0;
    };

    Buffer *buffer();
    void emit(TraceEvent ev);
    void wallSpan(const char *cat, const char *name, double t0);

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point wall_epoch_{};
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<Buffer>> buffers_;
    std::map<uint32_t, std::string> lane_names_;
    uint32_t next_wall_tid_ = kWallTidBase;
};

} // namespace obs
} // namespace recperf

#endif // RECPERF_OBS_TRACE_HH
