/**
 * @file
 * Process-wide metrics registry: counters, gauges, and HDR-style
 * latency histograms.
 *
 * The paper's contribution is *characterization* — per-operator cycle
 * breakdowns (Fig 4/7), batching effects (Fig 8), tail latency
 * (Fig 11). This registry is the substrate that makes those numbers
 * observable in one place at the end of any run instead of being
 * re-derived ad hoc by every tool and bench.
 *
 * Design:
 *  - Metrics are interned by name once (mutex-protected) and then
 *    addressed by dense integer ids through cheap value handles.
 *  - Hot-path updates go to per-thread shards (relaxed atomics on
 *    cachelines only the owning thread writes), so counting in a
 *    parallelFor region costs one uncontended atomic add.
 *  - snapshot() merges all shards under the registry mutex; a thread
 *    that has exited keeps contributing its final values because the
 *    registry co-owns every shard.
 *  - Latency histograms are HDR-style log-linear: 16 sub-buckets per
 *    power of two from 1 ns up to ~18 minutes, so any percentile is
 *    answered with < ~3% relative error at O(1) memory.
 */

#ifndef RECPERF_OBS_METRICS_HH
#define RECPERF_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace recperf {
namespace obs {

class MetricsRegistry;

/** Engineering-friendly rendering of a seconds value ("3.2 us"). */
std::string humanSeconds(double s);

/** Merged view of one latency histogram at snapshot time. */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Merged HDR bucket counts (see LatencyBuckets layout). */
    std::vector<uint64_t> buckets;

    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }

    /**
     * Percentile in [0, 100] from the merged buckets; the answer is the
     * bucket midpoint, i.e. within half a sub-bucket (~3%) of the exact
     * rank statistic. Returns 0 on an empty histogram.
     */
    double percentile(double pct) const;
};

/** Point-in-time merged view of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /** Value of a counter, 0 when absent. */
    uint64_t counter(const std::string &name) const;

    /** Value of a gauge, 0.0 when absent. */
    double gauge(const std::string &name) const;

    /** Histogram by name, nullptr when absent. */
    const HistogramSnapshot *histogram(const std::string &name) const;

    /**
     * Uniform human-readable summary table: one aligned row per metric
     * (histograms report count / mean / p50 / p95 / p99 / max). This is
     * the single end-of-run formatter the CLI tools route through.
     */
    std::string table() const;

    /** Machine-readable JSON (schema_version 1). */
    std::string toJson() const;
};

/** Cheap value handle for a registered counter. */
class Counter
{
  public:
    Counter() = default;
    void add(uint64_t n);
    void inc() { add(1); }

  private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry *reg, uint32_t id) : reg_(reg), id_(id) {}
    MetricsRegistry *reg_ = nullptr;
    uint32_t id_ = 0;
};

/** Cheap value handle for a registered gauge (last write wins). */
class Gauge
{
  public:
    Gauge() = default;
    void set(double v);
    void add(double v);

  private:
    friend class MetricsRegistry;
    Gauge(MetricsRegistry *reg, uint32_t id) : reg_(reg), id_(id) {}
    MetricsRegistry *reg_ = nullptr;
    uint32_t id_ = 0;
};

/** Cheap value handle for a registered latency histogram (seconds). */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;
    void record(double seconds);

    /** Bucket index a value falls into (log-linear HDR layout). */
    static size_t bucketIndex(double seconds);

    /** Midpoint value (seconds) represented by bucket @p i. */
    static double bucketMidpoint(size_t i);

    /** Sub-buckets per power-of-two octave. */
    static constexpr size_t kSubBuckets = 16;

    /** Octaves covered: 1 ns .. 2^40 ns (~18 minutes). */
    static constexpr size_t kOctaves = 41;

    static constexpr size_t kNumBuckets = kOctaves * kSubBuckets;

  private:
    friend class MetricsRegistry;
    LatencyHistogram(MetricsRegistry *reg, uint32_t id)
        : reg_(reg), id_(id)
    {
    }
    MetricsRegistry *reg_ = nullptr;
    uint32_t id_ = 0;
};

/**
 * The registry. Use MetricsRegistry::global() for the process-wide
 * instance; tests may construct private registries.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    static MetricsRegistry &global();

    /**
     * Intern a metric by name (idempotent: the same name returns a
     * handle to the same metric). Names are reported in registration
     * order by snapshot().
     */
    Counter counter(const std::string &name);
    Gauge gauge(const std::string &name);
    LatencyHistogram histogram(const std::string &name);

    /** Merge every thread's shard into one consistent view. */
    MetricsSnapshot snapshot() const;

    /** Zero all values (registrations survive). */
    void reset();

    /** Hard cap on metrics per kind; shards preallocate to this. */
    static constexpr size_t kMaxCounters = 256;
    static constexpr size_t kMaxHistograms = 64;
    static constexpr size_t kMaxGauges = 128;

  private:
    friend class Counter;
    friend class Gauge;
    friend class LatencyHistogram;

    /**
     * Per-thread value storage. Written only by the owning thread
     * (relaxed atomics so snapshot() can read concurrently without
     * tearing); co-owned by the registry so values outlive the thread.
     */
    struct Shard
    {
        std::atomic<uint64_t> counters[kMaxCounters];
        struct Hist
        {
            std::atomic<uint64_t> count{0};
            std::atomic<double> sum{0.0};
            std::atomic<double> min{0.0};
            std::atomic<double> max{0.0};
            std::unique_ptr<std::atomic<uint64_t>[]> buckets;
        };
        Hist hists[kMaxHistograms];
        Shard();
    };

    static uint64_t nextUid();

    Shard *shard();
    void addCounter(uint32_t id, uint64_t n);
    void setGauge(uint32_t id, double v, bool accumulate);
    void recordHistogram(uint32_t id, double seconds);
    uint32_t intern(std::vector<std::string> &names, size_t cap,
                    const char *kind, const std::string &name);

    /** Process-unique id; the per-thread shard cache keys on it. */
    const uint64_t uid_ = nextUid();

    mutable std::mutex mu_;
    std::vector<std::string> counter_names_;
    std::vector<std::string> gauge_names_;
    std::vector<std::string> hist_names_;
    std::vector<std::unique_ptr<std::atomic<double>>> gauges_;
    std::vector<std::shared_ptr<Shard>> shards_;
};

} // namespace obs
} // namespace recperf

#endif // RECPERF_OBS_METRICS_HH
