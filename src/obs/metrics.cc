#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace recperf {
namespace obs {

namespace {

/** JSON string escaping for metric names. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

} // namespace

std::string
humanSeconds(double s)
{
    if (s == 0.0)
        return "0";
    if (s < 1e-6)
        return strprintf("%.0f ns", s * 1e9);
    if (s < 1e-3)
        return strprintf("%.2f us", s * 1e6);
    if (s < 1.0)
        return strprintf("%.3f ms", s * 1e3);
    return strprintf("%.3f s", s);
}

// ------------------------------------------------------------ histogram

size_t
LatencyHistogram::bucketIndex(double seconds)
{
    double ns = seconds * 1e9;
    if (!(ns >= 1.0)) // also catches NaN and negatives
        return 0;
    int exp = 0;
    double frac = std::frexp(ns, &exp); // ns = frac * 2^exp, frac in [0.5, 1)
    size_t octave = static_cast<size_t>(exp - 1); // floor(log2 ns)
    if (octave >= kOctaves)
        return kNumBuckets - 1;
    // frac*2 is in [1, 2): the top kSubBuckets-th of the mantissa picks
    // the linear sub-bucket within the octave.
    auto sub = static_cast<size_t>((frac * 2.0 - 1.0) *
                                   static_cast<double>(kSubBuckets));
    sub = std::min(sub, kSubBuckets - 1);
    return octave * kSubBuckets + sub;
}

double
LatencyHistogram::bucketMidpoint(size_t i)
{
    size_t octave = i / kSubBuckets;
    size_t sub = i % kSubBuckets;
    double lo_ns = std::ldexp(1.0 + static_cast<double>(sub) /
                                        static_cast<double>(kSubBuckets),
                              static_cast<int>(octave));
    double hi_ns = std::ldexp(1.0 + static_cast<double>(sub + 1) /
                                        static_cast<double>(kSubBuckets),
                              static_cast<int>(octave));
    return 0.5 * (lo_ns + hi_ns) * 1e-9;
}

double
HistogramSnapshot::percentile(double pct) const
{
    if (count == 0 || buckets.empty())
        return 0.0;
    pct = std::clamp(pct, 0.0, 100.0);
    // Rank of the requested percentile among `count` ordered samples
    // (nearest-rank, 1-based).
    auto rank = static_cast<uint64_t>(
        std::ceil(pct / 100.0 * static_cast<double>(count)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            // A bucket midpoint can overshoot the true extremes (the
            // max may sit in the lower half of its bucket); clamp so
            // the table never reports p99 > max.
            return std::clamp(LatencyHistogram::bucketMidpoint(i), min,
                              max);
        }
    }
    return max;
}

// ------------------------------------------------------------- registry

MetricsRegistry::Shard::Shard()
{
    for (auto &c : counters)
        c.store(0, std::memory_order_relaxed);
    for (auto &h : hists) {
        h.buckets = std::make_unique<std::atomic<uint64_t>[]>(
            LatencyHistogram::kNumBuckets);
        for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i)
            h.buckets[i].store(0, std::memory_order_relaxed);
    }
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *reg = new MetricsRegistry();
    return *reg;
}

uint64_t
MetricsRegistry::nextUid()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Shard *
MetricsRegistry::shard()
{
    // Keyed by the registry's uid, not its address: a registry
    // stack-allocated where a destroyed one lived must not inherit the
    // stale cached shard.
    struct Slot
    {
        uint64_t uid = 0;
        std::shared_ptr<Shard> shard;
    };
    thread_local Slot slot;
    if (slot.uid != uid_ || !slot.shard) {
        auto fresh = std::make_shared<Shard>();
        {
            std::lock_guard<std::mutex> lock(mu_);
            shards_.push_back(fresh);
        }
        slot.uid = uid_;
        slot.shard = std::move(fresh);
    }
    return slot.shard.get();
}

uint32_t
MetricsRegistry::intern(std::vector<std::string> &names, size_t cap,
                        const char *kind, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return static_cast<uint32_t>(i);
    }
    RP_ASSERT(names.size() < cap, "too many %s metrics (cap %zu)", kind,
              cap);
    names.push_back(name);
    return static_cast<uint32_t>(names.size() - 1);
}

Counter
MetricsRegistry::counter(const std::string &name)
{
    return {this, intern(counter_names_, kMaxCounters, "counter", name)};
}

Gauge
MetricsRegistry::gauge(const std::string &name)
{
    uint32_t id = intern(gauge_names_, kMaxGauges, "gauge", name);
    {
        std::lock_guard<std::mutex> lock(mu_);
        while (gauges_.size() < gauge_names_.size())
            gauges_.push_back(std::make_unique<std::atomic<double>>(0.0));
    }
    return {this, id};
}

LatencyHistogram
MetricsRegistry::histogram(const std::string &name)
{
    return {this, intern(hist_names_, kMaxHistograms, "histogram", name)};
}

void
MetricsRegistry::addCounter(uint32_t id, uint64_t n)
{
    shard()->counters[id].fetch_add(n, std::memory_order_relaxed);
}

void
MetricsRegistry::setGauge(uint32_t id, double v, bool accumulate)
{
    std::atomic<double> *cell = nullptr;
    {
        std::lock_guard<std::mutex> lock(mu_);
        cell = gauges_.at(id).get();
    }
    if (accumulate) {
        double cur = cell->load(std::memory_order_relaxed);
        while (!cell->compare_exchange_weak(cur, cur + v,
                                            std::memory_order_relaxed)) {
        }
    } else {
        cell->store(v, std::memory_order_relaxed);
    }
}

void
MetricsRegistry::recordHistogram(uint32_t id, double seconds)
{
    // A NaN or infinite sample would poison sum/min/max permanently
    // (NaN propagates through every later merge); negatives have no
    // latency meaning. NaN and negatives clamp to zero (bucket 0);
    // +inf saturates to the histogram's top of range so an "infinite"
    // latency still reads as huge rather than as instantaneous.
    if (std::isnan(seconds) || seconds < 0.0)
        seconds = 0.0;
    else if (std::isinf(seconds))
        seconds = LatencyHistogram::bucketMidpoint(
            LatencyHistogram::kNumBuckets - 1);
    Shard::Hist &h = shard()->hists[id];
    uint64_t n = h.count.load(std::memory_order_relaxed);
    if (n == 0 || seconds < h.min.load(std::memory_order_relaxed))
        h.min.store(seconds, std::memory_order_relaxed);
    if (n == 0 || seconds > h.max.load(std::memory_order_relaxed))
        h.max.store(seconds, std::memory_order_relaxed);
    h.count.store(n + 1, std::memory_order_relaxed);
    h.sum.store(h.sum.load(std::memory_order_relaxed) + seconds,
                std::memory_order_relaxed);
    h.buckets[LatencyHistogram::bucketIndex(seconds)].fetch_add(
        1, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.counters.reserve(counter_names_.size());
    for (size_t i = 0; i < counter_names_.size(); ++i) {
        uint64_t total = 0;
        for (const auto &s : shards_)
            total += s->counters[i].load(std::memory_order_relaxed);
        snap.counters.emplace_back(counter_names_[i], total);
    }
    for (size_t i = 0; i < gauge_names_.size(); ++i) {
        snap.gauges.emplace_back(
            gauge_names_[i],
            gauges_[i]->load(std::memory_order_relaxed));
    }
    for (size_t i = 0; i < hist_names_.size(); ++i) {
        HistogramSnapshot h;
        h.buckets.assign(LatencyHistogram::kNumBuckets, 0);
        bool first = true;
        for (const auto &s : shards_) {
            const Shard::Hist &sh = s->hists[i];
            uint64_t c = sh.count.load(std::memory_order_relaxed);
            if (c == 0)
                continue;
            h.count += c;
            h.sum += sh.sum.load(std::memory_order_relaxed);
            double mn = sh.min.load(std::memory_order_relaxed);
            double mx = sh.max.load(std::memory_order_relaxed);
            if (first || mn < h.min)
                h.min = mn;
            if (first || mx > h.max)
                h.max = mx;
            first = false;
            for (size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
                h.buckets[b] +=
                    sh.buckets[b].load(std::memory_order_relaxed);
            }
        }
        snap.histograms.emplace_back(hist_names_[i], std::move(h));
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &s : shards_) {
        for (auto &c : s->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &h : s->hists) {
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0.0, std::memory_order_relaxed);
            h.min.store(0.0, std::memory_order_relaxed);
            h.max.store(0.0, std::memory_order_relaxed);
            for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i)
                h.buckets[i].store(0, std::memory_order_relaxed);
        }
    }
    for (const auto &g : gauges_)
        g->store(0.0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- handles

void
Counter::add(uint64_t n)
{
    if (reg_)
        reg_->addCounter(id_, n);
}

void
Gauge::set(double v)
{
    if (reg_)
        reg_->setGauge(id_, v, /*accumulate=*/false);
}

void
Gauge::add(double v)
{
    if (reg_)
        reg_->setGauge(id_, v, /*accumulate=*/true);
}

void
LatencyHistogram::record(double seconds)
{
    if (reg_)
        reg_->recordHistogram(id_, seconds);
}

// ------------------------------------------------------------- snapshot

uint64_t
MetricsSnapshot::counter(const std::string &name) const
{
    for (const auto &[n, v] : counters) {
        if (n == name)
            return v;
    }
    return 0;
}

double
MetricsSnapshot::gauge(const std::string &name) const
{
    for (const auto &[n, v] : gauges) {
        if (n == name)
            return v;
    }
    return 0.0;
}

const HistogramSnapshot *
MetricsSnapshot::histogram(const std::string &name) const
{
    for (const auto &[n, v] : histograms) {
        if (n == name)
            return &v;
    }
    return nullptr;
}

std::string
MetricsSnapshot::table() const
{
    std::string out;
    size_t width = 8;
    for (const auto &[n, v] : counters)
        width = std::max(width, n.size());
    for (const auto &[n, v] : gauges)
        width = std::max(width, n.size());
    for (const auto &[n, v] : histograms)
        width = std::max(width, n.size());
    auto w = static_cast<int>(width);

    for (const auto &[n, v] : counters) {
        out += strprintf("  %-*s %14llu\n", w, n.c_str(),
                         static_cast<unsigned long long>(v));
    }
    for (const auto &[n, v] : gauges)
        out += strprintf("  %-*s %14.4g\n", w, n.c_str(), v);
    for (const auto &[n, h] : histograms) {
        out += strprintf(
            "  %-*s  count %-8llu mean %-10s p50 %-10s p95 %-10s "
            "p99 %-10s max %s\n",
            w, n.c_str(), static_cast<unsigned long long>(h.count),
            humanSeconds(h.mean()).c_str(),
            humanSeconds(h.percentile(50)).c_str(),
            humanSeconds(h.percentile(95)).c_str(),
            humanSeconds(h.percentile(99)).c_str(),
            humanSeconds(h.max).c_str());
    }
    return out;
}

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\n  \"schema_version\": 1,\n  \"counters\": {";
    bool first = true;
    for (const auto &[n, v] : counters) {
        out += strprintf("%s\n    \"%s\": %llu", first ? "" : ",",
                         jsonEscape(n).c_str(),
                         static_cast<unsigned long long>(v));
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    first = true;
    for (const auto &[n, v] : gauges) {
        out += strprintf("%s\n    \"%s\": %.12g", first ? "" : ",",
                         jsonEscape(n).c_str(), v);
        first = false;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &[n, h] : histograms) {
        out += strprintf(
            "%s\n    \"%s\": {\"count\": %llu, \"sum_s\": %.12g, "
            "\"min_s\": %.12g, \"max_s\": %.12g, \"mean_s\": %.12g, "
            "\"p50_s\": %.12g, \"p95_s\": %.12g, \"p99_s\": %.12g, "
            "\"p999_s\": %.12g}",
            first ? "" : ",", jsonEscape(n).c_str(),
            static_cast<unsigned long long>(h.count), h.sum, h.min,
            h.max, h.mean(), h.percentile(50), h.percentile(95),
            h.percentile(99), h.percentile(99.9));
        first = false;
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    return out;
}

} // namespace obs
} // namespace recperf
