/**
 * @file
 * Fixed-cadence time-series sampling of metrics over *virtual* time.
 *
 * End-of-run aggregates (MetricsRegistry) answer "what happened
 * overall"; tail behaviour under load — burst absorption, failover
 * transients, SLO burn — needs the time dimension. The sampler
 * snapshots selected telemetry at a fixed virtual-time cadence while
 * Server::runOpenLoop / ShardedInference::run advance their simulated
 * clocks, into a bounded ring buffer exported as JSONL.
 *
 * Because samples are taken at deterministic virtual timestamps, the
 * series is bit-identical across host thread counts, like the virtual
 * trace lanes.
 *
 * The sampler also maintains SLO burn-rate gauges in the style of
 * multi-window error-budget alerting: the burn rate over a window is
 * (fraction of SLA-violating items in the window) / errorBudget, so a
 * burn rate of 1.0 means violations are arriving exactly at the rate
 * the SLO (e.g. p99 => 1% budget) allows, and >> 1 means the budget is
 * burning fast.
 *
 * Off by default; every emission site checks one relaxed atomic flag.
 */

#ifndef RECPERF_OBS_TIMESERIES_HH
#define RECPERF_OBS_TIMESERIES_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace recperf {
namespace obs {

class HwTelemetry;

/** Sampling cadence and window configuration. */
struct TimeSeriesOptions
{
    /** Virtual seconds between samples. */
    double intervalSeconds = 0.01;

    /** Ring-buffer capacity; oldest samples drop beyond this. */
    size_t capacity = 4096;

    /** Fast burn-rate window (virtual seconds). */
    double shortWindowSeconds = 1.0;

    /** Slow burn-rate window (virtual seconds). */
    double longWindowSeconds = 10.0;

    /** SLO error budget; 0.01 corresponds to a p99 latency SLO. */
    double errorBudget = 0.01;

    /** Telemetry source for hw.* fields; null means the global. */
    HwTelemetry *telemetry = nullptr;
};

/** One captured sample (cumulative values at virtual time t). */
struct TimeSeriesSample
{
    double t = 0.0;            ///< virtual timestamp (seconds)
    uint64_t items = 0;        ///< items observed so far
    uint64_t violations = 0;   ///< SLA violations so far
    double burnShort = 0.0;    ///< short-window burn rate
    double burnLong = 0.0;     ///< long-window burn rate
    double flops = 0.0;        ///< cumulative modeled FLOPs
    double bytesRead = 0.0;    ///< cumulative bytes read
    double bytesWritten = 0.0; ///< cumulative bytes written
    uint64_t dramLines = 0;    ///< cumulative DRAM lines
    double llcMpki = 0.0;      ///< running modeled LLC MPKI
};

/**
 * Process-wide virtual-time sampler. Use global() everywhere; tests
 * may construct private instances.
 */
class TimeSeriesSampler
{
  public:
    TimeSeriesSampler() = default;
    TimeSeriesSampler(const TimeSeriesSampler &) = delete;
    TimeSeriesSampler &operator=(const TimeSeriesSampler &) = delete;

    static TimeSeriesSampler &global();

    void setEnabled(bool on);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Install options and clear all captured state. */
    void configure(const TimeSeriesOptions &options);

    /** Clear captured state; options survive. */
    void reset();

    /**
     * Advance the sample clock to virtual time @p now, capturing one
     * sample per elapsed interval. The first tick after reset()
     * captures immediately at @p now and anchors the cadence there.
     * If more intervals elapsed than the ring can hold, the excess
     * leading samples are skipped and counted as dropped.
     */
    void tick(double now);

    /**
     * Record one served item finishing at virtual time @p t with the
     * given end-to-end @p latencySeconds; @p violated marks an SLA
     * miss. Feeds the sliding burn-rate windows.
     */
    void observeItem(double t, double latencySeconds, bool violated);

    /**
     * Burn rate over the trailing @p windowSeconds at virtual time
     * @p now, computed from the items observed so far — the same value
     * tick() would capture. Lets controllers (the brownout ladder)
     * read the gauges at decision points between samples. Returns 0
     * for an empty window.
     */
    double burnRate(double now, double windowSeconds) const;

    /** Number of captured samples currently buffered. */
    size_t size() const;

    /** Samples captured since reset (including since-dropped ones). */
    uint64_t samplesTaken() const;

    /** Samples lost to ring overflow or tick fast-forward. */
    uint64_t samplesDropped() const;

    /** Copy of the buffered samples, oldest first. */
    std::vector<TimeSeriesSample> samples() const;

    /** One JSON object per line, stable key order. */
    std::string toJsonl() const;

    /** Write toJsonl() to @p path; false (with a warning) on failure. */
    bool writeFile(const std::string &path) const;

    /**
     * Publish summary metrics: slo.burn_rate_short / slo.burn_rate_long
     * / slo.error_budget_consumed gauges and timeseries.samples_taken /
     * timeseries.samples_dropped / slo.items / slo.violations counters.
     */
    void exportTo(MetricsRegistry &registry) const;

  private:
    struct Item
    {
        double t;
        bool violated;
    };

    TimeSeriesSample captureLocked(double t);
    double burnLocked(double now, double window) const;
    void pruneLocked(double now);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    TimeSeriesOptions options_;
    std::deque<TimeSeriesSample> ring_;
    std::deque<Item> window_;
    bool anchored_ = false;
    double next_sample_t_ = 0.0;
    uint64_t taken_ = 0;
    uint64_t dropped_ = 0;
    uint64_t items_total_ = 0;
    uint64_t violations_total_ = 0;
    double last_burn_short_ = 0.0;
    double last_burn_long_ = 0.0;
};

} // namespace obs
} // namespace recperf

#endif // RECPERF_OBS_TIMESERIES_HH
