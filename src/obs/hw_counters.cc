#include "obs/hw_counters.hh"

namespace recperf {
namespace obs {

namespace {

constexpr double kLineBytes = 64.0;

/**
 * Delta of one level's cumulative stats vs. its baseline. A caller
 * resetting the hierarchy's stats mid-run makes the cumulative view go
 * backwards; treat the post-reset value as the whole delta instead of
 * producing wrapped-around garbage.
 */
CacheStats
statsDelta(const CacheStats &cur, const CacheStats &base)
{
    if (cur.accesses < base.accesses)
        return cur;
    CacheStats d;
    d.accesses = cur.accesses - base.accesses;
    d.hits = cur.hits - base.hits;
    d.misses = cur.misses - base.misses;
    d.evictions = cur.evictions - base.evictions;
    d.backInvalidations = cur.backInvalidations - base.backInvalidations;
    return d;
}

double
mpki(uint64_t misses, double instructions)
{
    return instructions > 0.0
        ? static_cast<double>(misses) / (instructions / 1000.0) : 0.0;
}

} // namespace

HwTelemetry &
HwTelemetry::global()
{
    static HwTelemetry *telemetry = new HwTelemetry();
    return *telemetry;
}

void
HwTelemetry::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
HwTelemetry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    totals_ = HwTotals();
    by_kind_.clear();
    baselines_.clear();
}

void
HwTelemetry::setRoofline(const RooflineSpec &roofline)
{
    std::lock_guard<std::mutex> lock(mu_);
    roofline_ = roofline;
}

void
HwTelemetry::recordOp(const OpRecord &record)
{
    std::lock_guard<std::mutex> lock(mu_);
    totals_.seconds += record.seconds;
    totals_.flops += record.flops;
    totals_.bytesRead += record.bytesRead;
    totals_.bytesWritten += record.bytesWritten;
    totals_.instructions += record.instructions;
    totals_.l1Lines += record.l1Lines;
    totals_.l2Lines += record.l2Lines;
    totals_.l3Lines += record.l3Lines;
    totals_.dramLines += record.dramLines;
    totals_.offloadSeconds += record.offloadSeconds;
    totals_.transferBytes += record.transferBytes;

    KindAgg &agg = by_kind_[record.kindName];
    agg.seconds += record.seconds;
    agg.flops += record.flops;
    agg.bytesRead += record.bytesRead;
    agg.bytesWritten += record.bytesWritten;
    agg.offloadSeconds += record.offloadSeconds;
    agg.transferBytes += record.transferBytes;
    ++agg.invocations;
}

void
HwTelemetry::sampleHierarchy(const CacheHierarchy &hier)
{
    HierarchyCounters cur = hier.counters();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = baselines_.find(&hier);
    if (it != baselines_.end()) {
        totals_.cache.l1 += statsDelta(cur.l1, it->second.l1);
        totals_.cache.l2 += statsDelta(cur.l2, it->second.l2);
        totals_.cache.l3 += statsDelta(cur.l3, it->second.l3);
        it->second = cur;
    } else {
        // First sight of this hierarchy: baseline only, so pre-window
        // (constructor warm-up) activity never leaks into the totals.
        baselines_.emplace(&hier, cur);
    }
}

HwTotals
HwTelemetry::totals() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totals_;
}

RooflineSpec
HwTelemetry::roofline() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return roofline_;
}

void
HwTelemetry::emitCounters(Tracer &tracer, double t_seconds,
                          uint32_t tid) const
{
    if (!tracer.enabled())
        return;
    HwTotals t = totals();
    // Track names must equal the exported metric names: check_trace.py
    // cross-checks each track's final value against the metrics file.
    tracer.counter("hw", "hw.flops", t_seconds, tid, t.flops);
    tracer.counter("hw", "hw.bytes_read", t_seconds, tid, t.bytesRead);
    tracer.counter("hw", "hw.bytes_written", t_seconds, tid,
                   t.bytesWritten);
    tracer.counter("hw", "hw.lines.dram", t_seconds, tid,
                   static_cast<double>(t.dramLines));
    tracer.counter("hw", "hw.llc_mpki", t_seconds, tid, t.llcMpki());
    tracer.counter("hw", "simcache.l3.misses", t_seconds, tid,
                   static_cast<double>(t.cache.l3.misses));
}

void
HwTelemetry::exportTo(MetricsRegistry &registry) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const HwTotals &t = totals_;

    auto count = [&](const char *name, double v) {
        registry.counter(name).add(static_cast<uint64_t>(v));
    };
    count("hw.flops", t.flops);
    count("hw.bytes_read", t.bytesRead);
    count("hw.bytes_written", t.bytesWritten);
    count("hw.instructions", t.instructions);
    registry.counter("hw.lines.l1").add(t.l1Lines);
    registry.counter("hw.lines.l2").add(t.l2Lines);
    registry.counter("hw.lines.l3").add(t.l3Lines);
    registry.counter("hw.lines.dram").add(t.dramLines);

    struct LevelRow
    {
        const char *name;
        const CacheStats *stats;
    };
    const LevelRow levels[] = {{"l1", &t.cache.l1},
                               {"l2", &t.cache.l2},
                               {"l3", &t.cache.l3}};
    for (const LevelRow &lvl : levels) {
        std::string prefix = std::string("simcache.") + lvl.name;
        registry.counter(prefix + ".accesses").add(lvl.stats->accesses);
        registry.counter(prefix + ".hits").add(lvl.stats->hits);
        registry.counter(prefix + ".misses").add(lvl.stats->misses);
        registry.counter(prefix + ".back_invalidations")
            .add(lvl.stats->backInvalidations);
        registry.gauge(prefix + ".mpki")
            .set(mpki(lvl.stats->misses, t.instructions));
    }

    registry.gauge("hw.seconds").set(t.seconds);
    registry.gauge("hw.llc_mpki").set(t.llcMpki());
    registry.gauge("hw.arithmetic_intensity").set(t.intensity());
    registry.gauge("hw.achieved_gflops")
        .set(t.seconds > 0.0 ? t.flops / t.seconds / 1e9 : 0.0);
    double dram_bytes_per_s = t.seconds > 0.0
        ? static_cast<double>(t.dramLines) * kLineBytes / t.seconds : 0.0;
    registry.gauge("hw.dram_bandwidth_utilization")
        .set(roofline_.streamGBps > 0.0
                 ? dram_bytes_per_s / (roofline_.streamGBps * 1e9)
                 : 0.0);

    // Offload metrics exist only when an offload backend ran: host-only
    // runs stay byte-identical to the pre-backend metric files.
    if (t.offloadSeconds > 0.0 || t.transferBytes > 0) {
        registry.gauge("hw.offload_seconds").set(t.offloadSeconds);
        registry.counter("hw.transfer_bytes").add(t.transferBytes);
    }

    for (const auto &[kind, agg] : by_kind_) {
        std::string prefix = "hw.op." + kind;
        registry.gauge(prefix + ".seconds").set(agg.seconds);
        registry.gauge(prefix + ".fraction")
            .set(t.seconds > 0.0 ? agg.seconds / t.seconds : 0.0);
        registry.gauge(prefix + ".flops").set(agg.flops);
        registry.gauge(prefix + ".bytes")
            .set(agg.bytesRead + agg.bytesWritten);
        registry.gauge(prefix + ".gflops")
            .set(agg.seconds > 0.0 ? agg.flops / agg.seconds / 1e9 : 0.0);
        double bytes = agg.bytesRead + agg.bytesWritten;
        registry.gauge(prefix + ".intensity")
            .set(bytes > 0.0 ? agg.flops / bytes : 0.0);
        if (agg.offloadSeconds > 0.0 || agg.transferBytes > 0) {
            registry.gauge(prefix + ".offload_seconds")
                .set(agg.offloadSeconds);
            registry.counter(prefix + ".transfer_bytes")
                .add(agg.transferBytes);
        }
    }

    registry.gauge("hw.machine.peak_gflops").set(roofline_.peakGflops);
    registry.gauge("hw.machine.stream_gbps").set(roofline_.streamGBps);
    registry.gauge("hw.machine.gather_gbps").set(roofline_.gatherGBps);
    registry.gauge("hw.machine.ridge_flops_per_byte")
        .set(roofline_.ridge());
}

} // namespace obs
} // namespace recperf
