#include "obs/timeseries.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/hw_counters.hh"

namespace recperf {
namespace obs {

namespace {

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

TimeSeriesSampler &
TimeSeriesSampler::global()
{
    static TimeSeriesSampler *sampler = new TimeSeriesSampler();
    return *sampler;
}

void
TimeSeriesSampler::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
TimeSeriesSampler::configure(const TimeSeriesOptions &options)
{
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    if (options_.intervalSeconds <= 0.0)
        options_.intervalSeconds = 0.01;
    if (options_.capacity == 0)
        options_.capacity = 1;
    ring_.clear();
    window_.clear();
    anchored_ = false;
    next_sample_t_ = 0.0;
    taken_ = dropped_ = items_total_ = violations_total_ = 0;
    last_burn_short_ = last_burn_long_ = 0.0;
}

void
TimeSeriesSampler::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    window_.clear();
    anchored_ = false;
    next_sample_t_ = 0.0;
    taken_ = dropped_ = items_total_ = violations_total_ = 0;
    last_burn_short_ = last_burn_long_ = 0.0;
}

double
TimeSeriesSampler::burnLocked(double now, double window) const
{
    if (window <= 0.0 || options_.errorBudget <= 0.0)
        return 0.0;
    uint64_t items = 0, violations = 0;
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->t < now - window)
            break;
        ++items;
        if (it->violated)
            ++violations;
    }
    if (items == 0)
        return 0.0;
    double frac = static_cast<double>(violations)
                  / static_cast<double>(items);
    return frac / options_.errorBudget;
}

void
TimeSeriesSampler::pruneLocked(double now)
{
    double horizon = now - options_.longWindowSeconds;
    while (!window_.empty() && window_.front().t < horizon)
        window_.pop_front();
}

TimeSeriesSample
TimeSeriesSampler::captureLocked(double t)
{
    TimeSeriesSample s;
    s.t = t;
    s.items = items_total_;
    s.violations = violations_total_;
    s.burnShort = burnLocked(t, options_.shortWindowSeconds);
    s.burnLong = burnLocked(t, options_.longWindowSeconds);
    last_burn_short_ = s.burnShort;
    last_burn_long_ = s.burnLong;

    HwTelemetry &telem = options_.telemetry ? *options_.telemetry
                                            : HwTelemetry::global();
    HwTotals totals = telem.totals();
    s.flops = totals.flops;
    s.bytesRead = totals.bytesRead;
    s.bytesWritten = totals.bytesWritten;
    s.dramLines = totals.dramLines;
    s.llcMpki = totals.llcMpki();
    return s;
}

void
TimeSeriesSampler::tick(double now)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!anchored_) {
        anchored_ = true;
        next_sample_t_ = now;
    }
    if (now < next_sample_t_)
        return;

    double interval = options_.intervalSeconds;
    // Fast-forward when more intervals elapsed than the ring can hold;
    // the leading samples would be evicted immediately anyway.
    double pending =
        std::floor((now - next_sample_t_) / interval) + 1.0;
    if (pending > static_cast<double>(options_.capacity)) {
        uint64_t skip = static_cast<uint64_t>(
            pending - static_cast<double>(options_.capacity));
        next_sample_t_ += static_cast<double>(skip) * interval;
        dropped_ += skip;
    }

    while (next_sample_t_ <= now) {
        pruneLocked(next_sample_t_);
        ring_.push_back(captureLocked(next_sample_t_));
        ++taken_;
        if (ring_.size() > options_.capacity) {
            ring_.pop_front();
            ++dropped_;
        }
        next_sample_t_ += interval;
    }
}

void
TimeSeriesSampler::observeItem(double t, double latencySeconds,
                               bool violated)
{
    (void)latencySeconds;
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    ++items_total_;
    if (violated)
        ++violations_total_;
    window_.push_back({t, violated});
    pruneLocked(t);
}

double
TimeSeriesSampler::burnRate(double now, double windowSeconds) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return burnLocked(now, windowSeconds);
}

size_t
TimeSeriesSampler::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

uint64_t
TimeSeriesSampler::samplesTaken() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return taken_;
}

uint64_t
TimeSeriesSampler::samplesDropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::vector<TimeSeriesSample>
TimeSeriesSampler::samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {ring_.begin(), ring_.end()};
}

std::string
TimeSeriesSampler::toJsonl() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const TimeSeriesSample &s : ring_) {
        out += "{\"t_s\": " + num(s.t);
        out += ", \"items\": " + std::to_string(s.items);
        out += ", \"violations\": " + std::to_string(s.violations);
        out += ", \"burn_short\": " + num(s.burnShort);
        out += ", \"burn_long\": " + num(s.burnLong);
        out += ", \"flops\": " + num(s.flops);
        out += ", \"bytes_read\": " + num(s.bytesRead);
        out += ", \"bytes_written\": " + num(s.bytesWritten);
        out += ", \"dram_lines\": " + std::to_string(s.dramLines);
        out += ", \"llc_mpki\": " + num(s.llcMpki);
        out += "}\n";
    }
    return out;
}

bool
TimeSeriesSampler::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "timeseries: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << toJsonl();
    return static_cast<bool>(out);
}

void
TimeSeriesSampler::exportTo(MetricsRegistry &registry) const
{
    std::lock_guard<std::mutex> lock(mu_);
    registry.gauge("slo.burn_rate_short").set(last_burn_short_);
    registry.gauge("slo.burn_rate_long").set(last_burn_long_);
    double consumed = 0.0;
    if (items_total_ > 0 && options_.errorBudget > 0.0)
        consumed = (static_cast<double>(violations_total_)
                    / static_cast<double>(items_total_))
                   / options_.errorBudget;
    registry.gauge("slo.error_budget_consumed").set(consumed);
    registry.counter("timeseries.samples_taken").add(taken_);
    registry.counter("timeseries.samples_dropped").add(dropped_);
    registry.counter("slo.items").add(items_total_);
    registry.counter("slo.violations").add(violations_total_);
}

} // namespace obs
} // namespace recperf
