#include "obs/request_log.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "core/logging.hh"
#include "core/stats.hh"
#include "obs/report.hh"

namespace recperf {
namespace obs {

namespace {

const char *const kPhaseNames[kNumRequestPhases] = {
    "queue",   "service", "straggler", "shard_straggler", "retry",
    "hedge",   "warmup",  "scrub",     "network",         "aggregate",
};

const char *const kOutcomeNames[kNumRequestOutcomes] = {
    "served",
    "shed_admission",
    "shed_admission_deadline",
    "shed_deadline_queue",
    "cancelled",
    "dropped_low_priority",
    "failed",
};

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

bool
parsePhaseName(const std::string &name, size_t *out)
{
    for (size_t i = 0; i < kNumRequestPhases; ++i) {
        if (name == kPhaseNames[i]) {
            *out = i;
            return true;
        }
    }
    return false;
}

std::vector<RequestRecord>
servedOnly(const std::vector<RequestRecord> &records)
{
    std::vector<RequestRecord> served;
    for (const RequestRecord &r : records)
        if (r.outcome == RequestOutcome::Served)
            served.push_back(r);
    return served;
}

/** Slowest-k served records within the trailing window. */
std::vector<RequestRecord>
pickSlowest(const std::vector<RequestRecord> &records, int k,
            double windowSeconds)
{
    std::vector<RequestRecord> served = servedOnly(records);
    if (windowSeconds > 0.0 && !served.empty()) {
        double last = 0.0;
        for (const RequestRecord &r : served)
            last = std::max(last, r.finish);
        double cutoff = last - windowSeconds;
        served.erase(std::remove_if(served.begin(), served.end(),
                                    [cutoff](const RequestRecord &r) {
                                        return r.finish < cutoff;
                                    }),
                     served.end());
    }
    std::sort(served.begin(), served.end(),
              [](const RequestRecord &a, const RequestRecord &b) {
                  if (a.latency != b.latency)
                      return a.latency > b.latency;
                  return a.id < b.id;
              });
    if (k >= 0 && served.size() > static_cast<size_t>(k))
        served.resize(static_cast<size_t>(k));
    return served;
}

/** Up to @p perDecile served records per latency decile, latency asc. */
std::vector<RequestRecord>
pickDeciles(const std::vector<RequestRecord> &records, int perDecile)
{
    std::vector<RequestRecord> served = servedOnly(records);
    std::sort(served.begin(), served.end(),
              [](const RequestRecord &a, const RequestRecord &b) {
                  if (a.latency != b.latency)
                      return a.latency < b.latency;
                  return a.id < b.id;
              });
    std::vector<RequestRecord> picked;
    size_t n = served.size();
    if (n == 0 || perDecile <= 0)
        return picked;
    for (size_t d = 0; d < 10; ++d) {
        size_t lo = d * n / 10;
        size_t hi = (d + 1) * n / 10;
        for (size_t i = lo; i < hi &&
                            i < lo + static_cast<size_t>(perDecile);
             ++i)
            picked.push_back(served[i]);
    }
    return picked;
}

} // namespace

const char *
requestPhaseName(RequestPhase phase)
{
    size_t i = static_cast<size_t>(phase);
    return i < kNumRequestPhases ? kPhaseNames[i] : "unknown";
}

const char *
requestOutcomeName(RequestOutcome outcome)
{
    size_t i = static_cast<size_t>(outcome);
    return i < kNumRequestOutcomes ? kOutcomeNames[i] : "unknown";
}

bool
parseRequestOutcome(const std::string &name, RequestOutcome *out)
{
    for (size_t i = 0; i < kNumRequestOutcomes; ++i) {
        if (name == kOutcomeNames[i]) {
            *out = static_cast<RequestOutcome>(i);
            return true;
        }
    }
    return false;
}

TailAttribution
attributeTail(const std::vector<RequestRecord> &records)
{
    TailAttribution a;
    std::vector<double> latencies;
    std::vector<const RequestRecord *> served;
    for (const RequestRecord &r : records) {
        if (r.outcome != RequestOutcome::Served)
            continue;
        served.push_back(&r);
        latencies.push_back(r.latency);
    }
    a.served = served.size();
    if (served.empty()) {
        a.blame[static_cast<size_t>(RequestPhase::Service)] = 1.0;
        return a;
    }
    a.p50 = percentile(latencies, 50.0);
    a.p99 = percentile(latencies, 99.0);
    a.gap = a.p99 - a.p50;

    // Each tail record (slower than the median) votes its phase
    // vector, weighted by the share of its latency that is excess, so
    // a request 10x the median counts for ~9x more than one at 1.1x.
    for (const RequestRecord *r : served) {
        if (r->latency <= a.p50 || r->latency <= 0.0)
            continue;
        double weight = (r->latency - a.p50) / r->latency;
        for (size_t i = 0; i < kNumRequestPhases; ++i)
            a.mass[i] += r->phase[i] * weight;
    }
    for (size_t i = 0; i < kNumRequestPhases; ++i)
        a.excessMass += a.mass[i];
    if (a.excessMass > 0.0) {
        for (size_t i = 0; i < kNumRequestPhases; ++i)
            a.blame[i] = a.mass[i] / a.excessMass;
    } else {
        a.blame[static_cast<size_t>(RequestPhase::Service)] = 1.0;
    }
    return a;
}

RequestLogger &
RequestLogger::global()
{
    static RequestLogger *logger = new RequestLogger();
    return *logger;
}

void
RequestLogger::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
RequestLogger::configure(const RequestLogOptions &options)
{
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    if (options_.capacity == 0)
        options_.capacity = 1;
    if (options_.slowestK < 1)
        options_.slowestK = 1;
    if (options_.perDecile < 0)
        options_.perDecile = 0;
    if (!(options_.windowSeconds >= 0.0))
        options_.windowSeconds = 0.0;
    records_.clear();
    recorded_ = dropped_ = 0;
}

void
RequestLogger::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    recorded_ = dropped_ = 0;
}

void
RequestLogger::record(const RequestRecord &rec)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    ++recorded_;
    if (records_.size() >= options_.capacity) {
        ++dropped_;
        return;
    }
    records_.push_back(rec);
}

std::vector<RequestRecord>
RequestLogger::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
}

size_t
RequestLogger::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

uint64_t
RequestLogger::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
}

uint64_t
RequestLogger::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::vector<RequestRecord>
RequestLogger::slowestExemplars() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pickSlowest(records_, options_.slowestK,
                       options_.windowSeconds);
}

std::vector<RequestRecord>
RequestLogger::decileExemplars() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pickDeciles(records_, options_.perDecile);
}

TailAttribution
RequestLogger::attribution() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return attributeTail(records_);
}

std::string
requestRecordJson(const RequestRecord &rec)
{
    std::string out = "{\"id\": " + std::to_string(rec.id);
    out += ", \"outcome\": \"";
    out += requestOutcomeName(rec.outcome);
    out += "\", \"arrival\": " + num(rec.arrival);
    out += ", \"start\": " + num(rec.start);
    out += ", \"finish\": " + num(rec.finish);
    out += ", \"latency_s\": " + num(rec.latency);
    out += ", \"phases\": {";
    bool first = true;
    for (size_t i = 0; i < kNumRequestPhases; ++i) {
        if (rec.phase[i] == 0.0)
            continue;
        if (!first)
            out += ", ";
        first = false;
        out += "\"";
        out += kPhaseNames[i];
        out += "\": " + num(rec.phase[i]);
    }
    out += "}";
    if (rec.brownoutLevel != 0)
        out += ", \"brownout_level\": " +
               std::to_string(rec.brownoutLevel);
    if (rec.degraded)
        out += ", \"degraded\": true";
    if (rec.slaViolated)
        out += ", \"sla_violated\": true";
    if (rec.deadlineClamped)
        out += ", \"deadline_clamped\": true";
    if (rec.hedgeWon)
        out += ", \"hedge_won\": true";
    if (rec.retries != 0)
        out += ", \"retries\": " + std::to_string(rec.retries);
    if (rec.hedges != 0)
        out += ", \"hedges\": " + std::to_string(rec.hedges);
    if (rec.hedgeWins != 0)
        out += ", \"hedge_wins\": " + std::to_string(rec.hedgeWins);
    if (rec.replica >= 0)
        out += ", \"replica\": " + std::to_string(rec.replica);
    if (rec.criticalShard >= 0)
        out += ", \"critical_shard\": " +
               std::to_string(rec.criticalShard);
    if (rec.batchItems != 0)
        out += ", \"batch_items\": " + std::to_string(rec.batchItems);
    if (rec.breakerRejects != 0)
        out += ", \"breaker_rejects\": " +
               std::to_string(rec.breakerRejects);
    if (rec.admissionEstimate != 0.0f)
        out += ", \"admission_estimate_s\": " +
               num(static_cast<double>(rec.admissionEstimate));
    if (rec.healthEwma != 0.0f)
        out += ", \"health_ewma\": " +
               num(static_cast<double>(rec.healthEwma));
    if (rec.offloadBytes != 0.0)
        out += ", \"offload_bytes\": " + num(rec.offloadBytes);
    out += "}";
    return out;
}

std::string
RequestLogger::toJsonl() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const RequestRecord &r : records_) {
        out += requestRecordJson(r);
        out += "\n";
    }
    return out;
}

bool
RequestLogger::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "request_log: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << toJsonl();
    return static_cast<bool>(out);
}

std::string
RequestLogger::exemplarsJsonl() const
{
    std::vector<RequestRecord> picked = slowestExemplars();
    std::vector<RequestRecord> deciles = decileExemplars();
    picked.insert(picked.end(), deciles.begin(), deciles.end());
    std::sort(picked.begin(), picked.end(),
              [](const RequestRecord &a, const RequestRecord &b) {
                  return a.id < b.id;
              });
    picked.erase(std::unique(picked.begin(), picked.end(),
                             [](const RequestRecord &a,
                                const RequestRecord &b) {
                                 return a.id == b.id;
                             }),
                 picked.end());
    std::string out;
    for (const RequestRecord &r : picked) {
        out += requestRecordJson(r);
        out += "\n";
    }
    return out;
}

bool
RequestLogger::writeExemplars(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr,
                     "request_log: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    out << exemplarsJsonl();
    return static_cast<bool>(out);
}

void
RequestLogger::exportTo(MetricsRegistry &registry) const
{
    std::vector<RequestRecord> snapshot = records();
    uint64_t recorded_total, dropped_total;
    {
        std::lock_guard<std::mutex> lock(mu_);
        recorded_total = recorded_;
        dropped_total = dropped_;
    }
    registry.counter("tail.requests.recorded").add(recorded_total);
    if (dropped_total != 0)
        registry.counter("tail.requests.dropped").add(dropped_total);

    TailAttribution a = attributeTail(snapshot);
    registry.gauge("tail.p50_seconds").set(a.p50);
    registry.gauge("tail.p99_seconds").set(a.p99);
    registry.gauge("tail.gap_seconds").set(a.gap);
    for (size_t i = 0; i < kNumRequestPhases; ++i) {
        if (a.blame[i] <= 0.0)
            continue;
        registry.gauge(std::string("tail.blame.") + kPhaseNames[i])
            .set(a.blame[i]);
    }

    std::vector<RequestRecord> slow = slowestExemplars();
    size_t count = std::min<size_t>(slow.size(), 4);
    for (size_t i = 0; i < count; ++i)
        registry
            .gauge(strprintf("tail.exemplar.slowest%zu_seconds", i))
            .set(slow[i].latency);

    std::vector<double> latencies;
    for (const RequestRecord &r : snapshot)
        if (r.outcome == RequestOutcome::Served)
            latencies.push_back(r.latency);
    if (!latencies.empty()) {
        for (int d = 1; d <= 9; ++d)
            registry.gauge(strprintf("tail.decile.p%d_seconds", d * 10))
                .set(percentile(latencies,
                                static_cast<double>(d) * 10.0));
    }
}

namespace {

bool
lineError(std::string *error, size_t lineno, const std::string &msg)
{
    if (error)
        *error = strprintf("request log line %zu: %s",
                           lineno, msg.c_str());
    return false;
}

bool
finiteField(const JsonValue &obj, const char *key, bool required,
            double fallback, double *out, std::string *msg)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr) {
        if (required) {
            *msg = strprintf("missing required field '%s'", key);
            return false;
        }
        *out = fallback;
        return true;
    }
    if (v->kind != JsonValue::Kind::Number ||
        !std::isfinite(v->number)) {
        *msg = strprintf("field '%s' is not a finite number", key);
        return false;
    }
    *out = v->number;
    return true;
}

} // namespace

bool
parseRequestLog(const std::string &jsonl,
                std::vector<RequestRecord> *out, std::string *error)
{
    out->clear();
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < jsonl.size()) {
        size_t nl = jsonl.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(jsonl.substr(pos));
            break;
        }
        lines.push_back(jsonl.substr(pos, nl - pos));
        pos = nl + 1;
    }
    if (lines.empty()) {
        if (error)
            *error = "request log is empty";
        return false;
    }
    for (size_t n = 0; n < lines.size(); ++n) {
        const std::string &line = lines[n];
        size_t lineno = n + 1;
        if (line.empty())
            return lineError(error, lineno, "empty line");
        JsonValue value;
        std::string parse_error;
        if (!parseJson(line, value, parse_error))
            return lineError(error, lineno, parse_error);
        if (value.kind != JsonValue::Kind::Object)
            return lineError(error, lineno, "not a JSON object");

        RequestRecord rec;
        std::string msg;
        double d;
        if (!finiteField(value, "id", true, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        if (d < 0.0 || d != std::floor(d))
            return lineError(error, lineno,
                             "'id' is not a non-negative integer");
        rec.id = static_cast<uint64_t>(d);

        const JsonValue *outcome = value.find("outcome");
        if (outcome == nullptr ||
            outcome->kind != JsonValue::Kind::String)
            return lineError(error, lineno,
                             "missing required field 'outcome'");
        if (!parseRequestOutcome(outcome->str, &rec.outcome))
            return lineError(
                error, lineno,
                strprintf("unknown outcome '%s'",
                          outcome->str.c_str()));

        struct
        {
            const char *key;
            double *dst;
        } times[] = {
            {"arrival", &rec.arrival},
            {"start", &rec.start},
            {"finish", &rec.finish},
            {"latency_s", &rec.latency},
        };
        for (const auto &t : times) {
            if (!finiteField(value, t.key, true, 0.0, t.dst, &msg))
                return lineError(error, lineno, msg);
            if (*t.dst < 0.0)
                return lineError(
                    error, lineno,
                    strprintf("field '%s' is negative", t.key));
        }

        const JsonValue *phases = value.find("phases");
        if (phases == nullptr ||
            phases->kind != JsonValue::Kind::Object)
            return lineError(error, lineno,
                             "missing required 'phases' object");
        for (const auto &field : phases->fields) {
            size_t idx;
            if (!parsePhaseName(field.first, &idx))
                return lineError(
                    error, lineno,
                    strprintf("unknown phase '%s'",
                              field.first.c_str()));
            if (field.second.kind != JsonValue::Kind::Number ||
                !std::isfinite(field.second.number) ||
                field.second.number < 0.0)
                return lineError(
                    error, lineno,
                    strprintf("phase '%s' is not a non-negative "
                              "number",
                              field.first.c_str()));
            rec.phase[idx] = field.second.number;
        }

        if (!finiteField(value, "brownout_level", false, 0.0, &d,
                         &msg))
            return lineError(error, lineno, msg);
        rec.brownoutLevel = static_cast<uint8_t>(d);
        struct
        {
            const char *key;
            bool *dst;
        } flags[] = {
            {"degraded", &rec.degraded},
            {"sla_violated", &rec.slaViolated},
            {"deadline_clamped", &rec.deadlineClamped},
            {"hedge_won", &rec.hedgeWon},
        };
        for (const auto &f : flags) {
            const JsonValue *v = value.find(f.key);
            if (v != nullptr && v->kind == JsonValue::Kind::Bool)
                *f.dst = v->boolean;
        }
        if (!finiteField(value, "retries", false, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.retries = static_cast<uint16_t>(d);
        if (!finiteField(value, "hedges", false, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.hedges = static_cast<uint16_t>(d);
        if (!finiteField(value, "hedge_wins", false, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.hedgeWins = static_cast<uint16_t>(d);
        if (!finiteField(value, "replica", false, -1.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.replica = static_cast<int32_t>(d);
        if (!finiteField(value, "critical_shard", false, -1.0, &d,
                         &msg))
            return lineError(error, lineno, msg);
        rec.criticalShard = static_cast<int32_t>(d);
        if (!finiteField(value, "batch_items", false, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.batchItems = static_cast<uint32_t>(d);
        if (!finiteField(value, "breaker_rejects", false, 0.0, &d,
                         &msg))
            return lineError(error, lineno, msg);
        rec.breakerRejects = static_cast<uint32_t>(d);
        if (!finiteField(value, "admission_estimate_s", false, 0.0, &d,
                         &msg))
            return lineError(error, lineno, msg);
        rec.admissionEstimate = static_cast<float>(d);
        if (!finiteField(value, "health_ewma", false, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.healthEwma = static_cast<float>(d);
        if (!finiteField(value, "offload_bytes", false, 0.0, &d, &msg))
            return lineError(error, lineno, msg);
        rec.offloadBytes = d;

        out->push_back(rec);
    }
    return true;
}

namespace {

/** Proportional phase bar, e.g. "[qqqqqqsssSS]". */
std::string
phaseBar(const RequestRecord &rec, int width)
{
    static const char kPhaseChars[kNumRequestPhases + 1] = "qsjSrhwcna";
    std::string bar;
    if (rec.latency <= 0.0)
        return bar;
    for (size_t i = 0; i < kNumRequestPhases; ++i) {
        int cells = static_cast<int>(
            std::lround(rec.phase[i] / rec.latency * width));
        bar.append(static_cast<size_t>(std::max(0, cells)),
                   kPhaseChars[i]);
    }
    if (static_cast<int>(bar.size()) > width)
        bar.resize(static_cast<size_t>(width));
    return "[" + bar + "]";
}

std::string
describePhases(const RequestRecord &rec)
{
    std::string out;
    for (size_t i = 0; i < kNumRequestPhases; ++i) {
        if (rec.phase[i] <= 0.0)
            continue;
        if (!out.empty())
            out += " | ";
        double pct = rec.latency > 0.0
                         ? rec.phase[i] / rec.latency * 100.0
                         : 0.0;
        out += strprintf("%s %s (%.0f%%)", kPhaseNames[i],
                         humanSeconds(rec.phase[i]).c_str(), pct);
    }
    return out;
}

} // namespace

std::string
renderExplain(const ExplainInputs &inputs, std::string &error)
{
    std::vector<RequestRecord> records;
    if (!parseRequestLog(inputs.requestLogJsonl, &records, &error))
        return "";

    uint64_t outcomes[kNumRequestOutcomes] = {};
    for (const RequestRecord &r : records)
        ++outcomes[static_cast<size_t>(r.outcome)];

    std::string out = "== Request log ==\n";
    out += strprintf("records: %zu", records.size());
    for (size_t i = 0; i < kNumRequestOutcomes; ++i)
        if (outcomes[i] != 0)
            out += strprintf("  %s: %llu", kOutcomeNames[i],
                             static_cast<unsigned long long>(
                                 outcomes[i]));
    out += "\n";

    TailAttribution a = attributeTail(records);
    out += "\n== Tail attribution (p99 - p50 blame) ==\n";
    out += strprintf("served: %llu  p50: %s  p99: %s  gap: %s\n",
                     static_cast<unsigned long long>(a.served),
                     humanSeconds(a.p50).c_str(),
                     humanSeconds(a.p99).c_str(),
                     humanSeconds(a.gap).c_str());
    std::vector<size_t> order;
    for (size_t i = 0; i < kNumRequestPhases; ++i)
        if (a.blame[i] > 0.0)
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [&a](size_t x, size_t y) {
                  if (a.blame[x] != a.blame[y])
                      return a.blame[x] > a.blame[y];
                  return x < y;
              });
    double blame_sum = 0.0;
    for (size_t i : order) {
        blame_sum += a.blame[i];
        out += strprintf("  %-16s %6.2f%%  (tail mass %s)\n",
                         kPhaseNames[i], a.blame[i] * 100.0,
                         humanSeconds(a.mass[i]).c_str());
    }
    out += strprintf("  blame fractions sum to %.6f\n", blame_sum);

    std::vector<RequestRecord> slow =
        pickSlowest(records, inputs.top, 0.0);
    if (!slow.empty()) {
        out += "\n== Slowest exemplars ==\n";
        out += "  legend: q=queue s=service j=straggler "
               "S=shard_straggler r=retry h=hedge w=warmup c=scrub "
               "n=network a=aggregate\n";
        for (const RequestRecord &r : slow) {
            out += strprintf(
                "  #%llu  %s  %s %s\n",
                static_cast<unsigned long long>(r.id),
                humanSeconds(r.latency).c_str(),
                requestOutcomeName(r.outcome),
                phaseBar(r, 40).c_str());
            out += "      " + describePhases(r) + "\n";
        }
    }

    std::vector<RequestRecord> served = servedOnly(records);
    if (!served.empty()) {
        std::sort(served.begin(), served.end(),
                  [](const RequestRecord &x, const RequestRecord &y) {
                      if (x.latency != y.latency)
                          return x.latency < y.latency;
                      return x.id < y.id;
                  });
        out += "\n== Latency deciles (served) ==\n";
        out += "  decile   upper      dominant cause\n";
        size_t n = served.size();
        for (size_t d = 0; d < 10; ++d) {
            size_t lo = d * n / 10;
            size_t hi = (d + 1) * n / 10;
            if (lo >= hi)
                continue;
            double phases[kNumRequestPhases] = {};
            for (size_t i = lo; i < hi; ++i)
                for (size_t p = 0; p < kNumRequestPhases; ++p)
                    phases[p] += served[i].phase[p];
            size_t top = 0;
            double total = 0.0;
            for (size_t p = 0; p < kNumRequestPhases; ++p) {
                total += phases[p];
                if (phases[p] > phases[top])
                    top = p;
            }
            double share = total > 0.0 ? phases[top] / total * 100.0
                                       : 0.0;
            out += strprintf("  p%-6zu  %-9s  %s %.0f%%\n",
                             (d + 1) * 10,
                             humanSeconds(served[hi - 1].latency)
                                 .c_str(),
                             kPhaseNames[top], share);
        }
    }

    if (!inputs.metricsJson.empty()) {
        JsonValue metrics;
        std::string parse_error;
        if (!parseJson(inputs.metricsJson, metrics, parse_error)) {
            error = "metrics: " + parse_error;
            return "";
        }
        const JsonValue *gauges = metrics.find("gauges");
        if (gauges == nullptr ||
            gauges->kind != JsonValue::Kind::Object) {
            error = "metrics: missing 'gauges' object";
            return "";
        }
        const std::string prefix = "tail.blame.";
        double exported_sum = 0.0;
        size_t matched = 0;
        for (const auto &field : gauges->fields) {
            if (field.first.compare(0, prefix.size(), prefix) != 0)
                continue;
            std::string cause = field.first.substr(prefix.size());
            size_t idx;
            if (!parsePhaseName(cause, &idx)) {
                error = strprintf("metrics: unknown blame cause '%s'",
                                  cause.c_str());
                return "";
            }
            double want = field.second.asNumber();
            exported_sum += want;
            ++matched;
            if (std::fabs(want - a.blame[idx]) > 1e-6) {
                error = strprintf(
                    "metrics: %s = %.9g but the log reconstructs "
                    "%.9g",
                    field.first.c_str(), want, a.blame[idx]);
                return "";
            }
        }
        if (matched == 0) {
            error = "metrics: no tail.blame.* gauges to cross-check "
                    "(was the run logged?)";
            return "";
        }
        if (std::fabs(exported_sum - 1.0) > 1e-6) {
            error = strprintf("metrics: exported blame fractions sum "
                              "to %.9g, want 1",
                              exported_sum);
            return "";
        }
        out += strprintf("\n== Metrics cross-check ==\n"
                         "  %zu tail.blame.* gauge(s) match the log "
                         "within 1e-6; fractions sum to %.6f\n",
                         matched, exported_sum);
    }
    return out;
}

std::string
validateRequestLogArgs(int slowestK, double windowSeconds,
                       bool haveSink, bool kSet, bool windowSet)
{
    if (slowestK < 1)
        return strprintf("--request-log-k must be >= 1 (got %d)",
                         slowestK);
    if (!(windowSeconds >= 0.0) || !std::isfinite(windowSeconds))
        return "--request-log-window-ms must be a finite value >= 0";
    if (!haveSink && kSet)
        return "--request-log-k has no effect without "
               "--request-log-out or --exemplars-out";
    if (!haveSink && windowSet)
        return "--request-log-window-ms has no effect without "
               "--request-log-out or --exemplars-out";
    return "";
}

} // namespace obs
} // namespace recperf
