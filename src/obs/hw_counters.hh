/**
 * @file
 * Hardware-model performance-counter telemetry.
 *
 * The paper's evidence is hardware-level characterization: per-level
 * cache MPKI and bandwidth pressure for the embedding-dominated models
 * (Fig 5, Takeaway 3), FLOP-bound FC stacks for RMC3 (Fig 2), and the
 * operator cycle breakdown (Fig 4/7). HwTelemetry is the single
 * accumulation point those model counters flow through during a run:
 *
 *  - the timing layer records, per operator invocation, modeled
 *    seconds, FLOPs, bytes moved, instructions, and per-level cache
 *    lines (recordTelemetry in timing/op_timing.hh);
 *  - the simcache hierarchy is sampled for ground-truth per-level
 *    hits/misses/back-invalidations (delta-accumulated, so shared
 *    co-location hierarchies are counted once);
 *  - the machine spec contributes the roofline envelope (peak GFLOP/s,
 *    stream/gather bandwidth, ridge intensity).
 *
 * At the end of a run exportTo() publishes everything as interned
 * counters/gauges in a MetricsRegistry; during a run emitCounters()
 * emits Chrome-trace counter events ("ph":"C") on the virtual-time
 * lanes, so counter traces are bit-identical across host thread counts
 * exactly like the span traces.
 *
 * Telemetry is off by default; every emission site first checks one
 * relaxed atomic flag (same contract as Tracer). The accumulators are
 * mutex-protected: recording happens once per simulated operator, not
 * per tensor element, so the lock is nowhere near a hot path.
 */

#ifndef RECPERF_OBS_HW_COUNTERS_HH
#define RECPERF_OBS_HW_COUNTERS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "simcache/hierarchy.hh"

namespace recperf {
namespace obs {

/** One operator invocation's worth of modeled hardware counters. */
struct OpRecord
{
    /** Display name of the operator kind ("FC", "SLS", ...). */
    std::string kindName;

    double seconds = 0.0;      ///< modeled latency
    double flops = 0.0;        ///< arithmetic work
    double bytesRead = 0.0;    ///< algorithmic read traffic
    double bytesWritten = 0.0; ///< algorithmic write traffic
    double instructions = 0.0; ///< estimated dynamic instructions

    uint64_t l1Lines = 0;   ///< cache lines serviced by L1
    uint64_t l2Lines = 0;   ///< cache lines serviced by L2
    uint64_t l3Lines = 0;   ///< cache lines serviced by the LLC
    uint64_t dramLines = 0; ///< cache lines serviced by DRAM

    double offloadSeconds = 0.0;  ///< near-memory engine time
    uint64_t transferBytes = 0;   ///< host<->engine link traffic
};

/** The machine's roofline envelope (Table II derived). */
struct RooflineSpec
{
    std::string machine;      ///< spec name, e.g. "Broadwell"
    double peakGflops = 0.0;  ///< single-core compute roof
    double streamGBps = 0.0;  ///< sequential-stream DRAM roof
    double gatherGBps = 0.0;  ///< random-gather DRAM roof

    /** FLOPs/byte where the compute and stream roofs intersect. */
    double ridge() const
    {
        return streamGBps > 0.0 ? peakGflops / streamGBps : 0.0;
    }
};

/** Point-in-time totals of everything recorded since the last reset. */
struct HwTotals
{
    double seconds = 0.0;
    double flops = 0.0;
    double bytesRead = 0.0;
    double bytesWritten = 0.0;
    double instructions = 0.0;
    uint64_t l1Lines = 0;
    uint64_t l2Lines = 0;
    uint64_t l3Lines = 0;
    uint64_t dramLines = 0;

    /** Offload-engine time and link traffic (zero on host-only runs). */
    double offloadSeconds = 0.0;
    uint64_t transferBytes = 0;

    /** Ground-truth simcache per-level statistics (delta-accumulated). */
    HierarchyCounters cache;

    /** FLOPs per byte moved (reads + writes). */
    double intensity() const
    {
        double bytes = bytesRead + bytesWritten;
        return bytes > 0.0 ? flops / bytes : 0.0;
    }

    /** Modeled DRAM lines per kilo-instruction. */
    double llcMpki() const
    {
        return instructions > 0.0
            ? static_cast<double>(dramLines) / (instructions / 1000.0)
            : 0.0;
    }
};

/**
 * Process-wide hardware-counter accumulator. Use global() everywhere;
 * tests may construct private instances.
 */
class HwTelemetry
{
  public:
    HwTelemetry() = default;
    HwTelemetry(const HwTelemetry &) = delete;
    HwTelemetry &operator=(const HwTelemetry &) = delete;

    static HwTelemetry &global();

    /** Turn collection on or off (off keeps accumulated state). */
    void setEnabled(bool on);

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Zero every accumulator and drop all hierarchy baselines. */
    void reset();

    /** Record the machine envelope (idempotent; last writer wins). */
    void setRoofline(const RooflineSpec &roofline);

    /** Accumulate one operator invocation. */
    void recordOp(const OpRecord &record);

    /**
     * Accumulate the delta of @p hier's statistics since this
     * hierarchy was last sampled. The first sample of a hierarchy (or
     * the first after reset()) only establishes the baseline, so
     * warm-up activity before the measurement window is excluded.
     * Several timers sharing one hierarchy advance the same baseline,
     * so shared co-location traffic is counted exactly once.
     */
    void sampleHierarchy(const CacheHierarchy &hier);

    /** Current totals (thread-safe copy). */
    HwTotals totals() const;

    /** Last recorded machine envelope. */
    RooflineSpec roofline() const;

    /**
     * Emit the cumulative counters as Chrome-trace counter events
     * ("ph":"C") at virtual time @p t_seconds on lane @p tid. Track
     * names match the exported metric names, so check_trace.py can
     * cross-check the final trace value against the metrics file.
     * No-op when the tracer is disabled.
     */
    void emitCounters(Tracer &tracer, double t_seconds,
                      uint32_t tid) const;

    /**
     * Publish everything into @p registry: hw.* counters (FLOPs,
     * bytes, instructions, per-level lines), simcache.<level>.*
     * counters (accesses/hits/misses/back-invalidations), per-kind
     * hw.op.<Kind>.* gauges (seconds/fraction/flops/bytes/gflops/
     * intensity), per-level MPKI gauges, and the machine roofline
     * gauges (hw.machine.*).
     */
    void exportTo(MetricsRegistry &registry) const;

  private:
    /** Per-operator-kind aggregation for the Fig 4/7 breakdown. */
    struct KindAgg
    {
        double seconds = 0.0;
        double flops = 0.0;
        double bytesRead = 0.0;
        double bytesWritten = 0.0;
        double offloadSeconds = 0.0;
        uint64_t transferBytes = 0;
        uint64_t invocations = 0;
    };

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    HwTotals totals_;
    std::map<std::string, KindAgg> by_kind_;
    /** Last-seen cumulative stats per hierarchy (delta baseline). */
    std::map<const CacheHierarchy *, HierarchyCounters> baselines_;
    RooflineSpec roofline_;
};

} // namespace obs
} // namespace recperf

#endif // RECPERF_OBS_HW_COUNTERS_HH
