#include "obs/report.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>

#include "core/logging.hh"
#include "obs/metrics.hh"

namespace recperf {
namespace obs {

// --------------------------------------------------------------- parser

namespace {

class Parser
{
  public:
    Parser(const std::string &text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters");
        return true;
    }

  private:
    bool fail(const std::string &what)
    {
        error_ = strprintf("JSON parse error at byte %zu: %s", pos_,
                           what.c_str());
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word, JsonValue &out, JsonValue::Kind kind,
                 bool boolean)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out.kind = kind;
        out.boolean = boolean;
        return true;
    }

    bool string(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(), nullptr,
                                 16));
                pos_ += 4;
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool number(JsonValue &out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                 nullptr);
        return true;
    }

    bool value(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return object(out);
          case '[': return array(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str);
          case 't':
            return literal("true", out, JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", out, JsonValue::Kind::Bool, false);
          case 'n':
            return literal("null", out, JsonValue::Kind::Null, false);
          default:
            return number(out);
        }
    }

    bool object(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue member;
            if (!value(member))
                return false;
            out.fields.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool array(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue item;
            if (!value(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &text_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : fields) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
parseJson(const std::string &text, JsonValue &out, std::string &error)
{
    return Parser(text, error).parse(out);
}

// --------------------------------------------------------------- report

namespace {

double
gaugeOf(const JsonValue &metrics, const std::string &name)
{
    const JsonValue *gauges = metrics.find("gauges");
    if (!gauges)
        return 0.0;
    const JsonValue *g = gauges->find(name);
    return g ? g->asNumber() : 0.0;
}

double
counterOf(const JsonValue &metrics, const std::string &name)
{
    const JsonValue *counters = metrics.find("counters");
    if (!counters)
        return 0.0;
    const JsonValue *c = counters->find(name);
    return c ? c->asNumber() : 0.0;
}

/** Operator kinds present in the metrics, in registration order. */
std::vector<std::string>
opKinds(const JsonValue &metrics)
{
    std::vector<std::string> kinds;
    const JsonValue *gauges = metrics.find("gauges");
    if (!gauges)
        return kinds;
    const std::string prefix = "hw.op.";
    const std::string suffix = ".seconds";
    for (const auto &[name, v] : gauges->fields) {
        if (name.size() > prefix.size() + suffix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            kinds.push_back(name.substr(
                prefix.size(),
                name.size() - prefix.size() - suffix.size()));
        }
    }
    return kinds;
}

std::string
latencySection(const JsonValue &metrics)
{
    const JsonValue *hists = metrics.find("histograms");
    if (!hists || hists->fields.empty())
        return "";
    std::string out = "Latency percentiles\n";
    size_t width = 8;
    for (const auto &[name, h] : hists->fields)
        width = std::max(width, name.size());
    auto w = static_cast<int>(width);
    auto cell = [](const JsonValue &h, const char *key) {
        const JsonValue *v = h.find(key);
        return humanSeconds(v ? v->asNumber() : 0.0);
    };
    for (const auto &[name, h] : hists->fields) {
        const JsonValue *count = h.find("count");
        out += strprintf(
            "  %-*s  count %-8.0f mean %-10s p50 %-10s p95 %-10s "
            "p99 %-10s p99.9 %-10s max %s\n",
            w, name.c_str(), count ? count->asNumber() : 0.0,
            cell(h, "mean_s").c_str(), cell(h, "p50_s").c_str(),
            cell(h, "p95_s").c_str(), cell(h, "p99_s").c_str(),
            cell(h, "p999_s").c_str(), cell(h, "max_s").c_str());
    }
    return out + "\n";
}

std::string
operatorSection(const JsonValue &metrics)
{
    std::vector<std::string> kinds = opKinds(metrics);
    if (kinds.empty())
        return "";
    std::string out =
        "Operator breakdown (share of modeled inference time, Fig 7)\n";
    out += strprintf("  %-12s %12s %10s %12s %14s\n", "kind",
                     "seconds", "fraction", "GFLOP/s", "FLOPs/byte");
    for (const std::string &kind : kinds) {
        std::string p = "hw.op." + kind + ".";
        out += strprintf("  %-12s %12.6g %9.1f%% %12.4g %14.4g\n",
                         kind.c_str(), gaugeOf(metrics, p + "seconds"),
                         gaugeOf(metrics, p + "fraction") * 100.0,
                         gaugeOf(metrics, p + "gflops"),
                         gaugeOf(metrics, p + "intensity"));
    }
    return out + "\n";
}

std::string
cacheSection(const JsonValue &metrics)
{
    static const char *kLevels[] = {"l1", "l2", "l3"};
    double total_accesses = 0.0;
    for (const char *lvl : kLevels)
        total_accesses +=
            counterOf(metrics, std::string("simcache.") + lvl +
                                   ".accesses");
    if (total_accesses <= 0.0)
        return "";
    std::string out = "Cache hierarchy (simcache ground truth, Fig 5)\n";
    out += strprintf("  %-6s %14s %14s %8s %10s %10s\n", "level",
                     "accesses", "misses", "hit%", "MPKI", "back-inv");
    for (const char *lvl : kLevels) {
        std::string p = std::string("simcache.") + lvl + ".";
        double accesses = counterOf(metrics, p + "accesses");
        double hits = counterOf(metrics, p + "hits");
        double misses = counterOf(metrics, p + "misses");
        double hit_pct = accesses > 0.0 ? hits / accesses * 100.0 : 0.0;
        out += strprintf(
            "  %-6s %14.0f %14.0f %7.1f%% %10.3f %10.0f\n", lvl,
            accesses, misses, hit_pct, gaugeOf(metrics, p + "mpki"),
            counterOf(metrics, p + "back_invalidations"));
    }
    out += strprintf("  modeled LLC MPKI (DRAM lines / kinst): %.3f\n",
                     gaugeOf(metrics, "hw.llc_mpki"));
    return out + "\n";
}

std::string
rooflineSection(const JsonValue &metrics)
{
    double peak = gaugeOf(metrics, "hw.machine.peak_gflops");
    double stream = gaugeOf(metrics, "hw.machine.stream_gbps");
    if (peak <= 0.0)
        return "";
    double ridge = gaugeOf(metrics, "hw.machine.ridge_flops_per_byte");
    std::string out = strprintf(
        "Roofline (Fig 2): peak %.1f GFLOP/s, stream %.1f GB/s, "
        "gather %.2f GB/s, ridge %.2f FLOPs/byte\n",
        peak, stream, gaugeOf(metrics, "hw.machine.gather_gbps"),
        ridge);
    out += strprintf("  %-12s %14s %14s %12s %8s  %s\n", "kind",
                     "FLOPs/byte", "achieved GF/s", "roof GF/s",
                     "%roof", "bound");
    for (const std::string &kind : opKinds(metrics)) {
        std::string p = "hw.op." + kind + ".";
        double intensity = gaugeOf(metrics, p + "intensity");
        double achieved = gaugeOf(metrics, p + "gflops");
        double roof = stream > 0.0
                          ? std::min(peak, intensity * stream)
                          : peak;
        const char *bound =
            intensity < ridge ? "memory" : "compute";
        out += strprintf("  %-12s %14.4g %14.4g %12.4g %7.1f%%  %s\n",
                         kind.c_str(), intensity, achieved, roof,
                         roof > 0.0 ? achieved / roof * 100.0 : 0.0,
                         bound);
    }
    out += strprintf(
        "  overall: intensity %.4g FLOPs/byte, %.4g GFLOP/s, "
        "DRAM bandwidth utilization %.1f%%\n",
        gaugeOf(metrics, "hw.arithmetic_intensity"),
        gaugeOf(metrics, "hw.achieved_gflops"),
        gaugeOf(metrics, "hw.dram_bandwidth_utilization") * 100.0);
    // Near-memory offload: these ops' gather bytes never cross the host
    // memory bus, so they sit outside the DRAM roof plotted above.
    if (gaugeOf(metrics, "hw.offload_seconds") > 0.0) {
        for (const std::string &kind : opKinds(metrics)) {
            std::string p = "hw.op." + kind + ".";
            double off = gaugeOf(metrics, p + "offload_seconds");
            if (off <= 0.0)
                continue;
            out += strprintf(
                "  %-12s offloaded: %.4g s on-engine, %.4g MB link "
                "traffic (off the host DRAM roof)\n",
                kind.c_str(), off,
                counterOf(metrics, p + "transfer_bytes") / 1e6);
        }
        out += strprintf(
            "  offload total: %.4g s on-engine, %.4g MB across the "
            "host link\n",
            gaugeOf(metrics, "hw.offload_seconds"),
            counterOf(metrics, "hw.transfer_bytes") / 1e6);
    }
    return out + "\n";
}

std::string
sloSection(const JsonValue &metrics, bool have_metrics,
           const std::vector<JsonValue> &series)
{
    double items = have_metrics ? counterOf(metrics, "slo.items") : 0.0;
    if (items <= 0.0 && series.empty())
        return "";
    std::string out = "SLO / error-budget burn\n";
    if (items > 0.0) {
        out += strprintf(
            "  items %.0f, violations %.0f, budget consumed %.2fx, "
            "burn short %.2f, burn long %.2f\n",
            items, counterOf(metrics, "slo.violations"),
            gaugeOf(metrics, "slo.error_budget_consumed"),
            gaugeOf(metrics, "slo.burn_rate_short"),
            gaugeOf(metrics, "slo.burn_rate_long"));
    }
    if (!series.empty()) {
        const JsonValue &last = series.back();
        auto field = [&](const char *key) {
            const JsonValue *v = last.find(key);
            return v ? v->asNumber() : 0.0;
        };
        double burn_peak = 0.0;
        for (const JsonValue &s : series) {
            const JsonValue *b = s.find("burn_short");
            if (b)
                burn_peak = std::max(burn_peak, b->asNumber());
        }
        out += strprintf(
            "  timeseries: %zu samples over %.4g s, final burn "
            "short %.2f / long %.2f, peak burn short %.2f\n",
            series.size(), field("t_s"), field("burn_short"),
            field("burn_long"), burn_peak);
    }
    return out + "\n";
}

/**
 * Tail attribution from the exported tail.blame.* gauges: which
 * mechanism the p99-p50 gap blames, largest share first. Empty when
 * the run was not request-logged (the gauges only export then), so
 * pre-existing reports render unchanged.
 */
std::string
tailSection(const JsonValue &metrics)
{
    const JsonValue *gauges = metrics.find("gauges");
    if (!gauges)
        return "";
    const std::string prefix = "tail.blame.";
    std::vector<std::pair<std::string, double>> blame;
    for (const auto &[name, v] : gauges->fields) {
        if (name.size() > prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0)
            blame.emplace_back(name.substr(prefix.size()), v.asNumber());
    }
    if (blame.empty())
        return "";
    std::sort(blame.begin(), blame.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    std::string out = "Tail attribution (p99 - p50 blame, request log)\n";
    out += strprintf(
        "  requests %.0f, p50 %s, p99 %s, gap %s\n",
        counterOf(metrics, "tail.requests.recorded"),
        humanSeconds(gaugeOf(metrics, "tail.p50_seconds")).c_str(),
        humanSeconds(gaugeOf(metrics, "tail.p99_seconds")).c_str(),
        humanSeconds(gaugeOf(metrics, "tail.gap_seconds")).c_str());
    for (const auto &[cause, share] : blame)
        out += strprintf("  %-16s %5.1f%%\n", cause.c_str(),
                         share * 100.0);
    return out + "\n";
}

std::string
traceSection(const JsonValue &trace)
{
    const JsonValue *events = trace.find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array ||
        events->items.empty())
        return "";
    size_t spans = 0, counters = 0, instants = 0;
    std::set<std::string> tracks;
    double t_min = 0.0, t_max = 0.0;
    bool first = true;
    for (const JsonValue &ev : events->items) {
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        if (!ph || ph->kind != JsonValue::Kind::String)
            continue;
        if (ph->str == "X")
            ++spans;
        else if (ph->str == "i")
            ++instants;
        else if (ph->str == "C") {
            ++counters;
            const JsonValue *name = ev.find("name");
            if (name)
                tracks.insert(name->str);
        } else {
            continue;
        }
        if (ts) {
            double t = ts->asNumber() * 1e-6;
            double end = t;
            const JsonValue *dur = ev.find("dur");
            if (ph->str == "X" && dur)
                end = t + dur->asNumber() * 1e-6;
            if (first || t < t_min)
                t_min = t;
            if (first || end > t_max)
                t_max = end;
            first = false;
        }
    }
    std::string out = "Trace summary\n";
    out += strprintf(
        "  %zu spans, %zu counter samples on %zu tracks, %zu "
        "instants, time span [%.6g, %.6g] s\n",
        spans, counters, tracks.size(), instants, t_min, t_max);
    return out + "\n";
}

} // namespace

std::string
renderReport(const ReportInputs &inputs, std::string &error)
{
    JsonValue metrics, trace;
    bool have_metrics = false, have_trace = false;
    if (!inputs.metricsJson.empty()) {
        if (!parseJson(inputs.metricsJson, metrics, error)) {
            error = "metrics: " + error;
            return "";
        }
        have_metrics = true;
    }
    if (!inputs.traceJson.empty()) {
        if (!parseJson(inputs.traceJson, trace, error)) {
            error = "trace: " + error;
            return "";
        }
        have_trace = true;
    }
    std::vector<JsonValue> series;
    if (!inputs.timeseriesJsonl.empty()) {
        size_t start = 0, lineno = 0;
        while (start < inputs.timeseriesJsonl.size()) {
            size_t end = inputs.timeseriesJsonl.find('\n', start);
            if (end == std::string::npos)
                end = inputs.timeseriesJsonl.size();
            std::string line =
                inputs.timeseriesJsonl.substr(start, end - start);
            start = end + 1;
            ++lineno;
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            JsonValue sample;
            if (!parseJson(line, sample, error)) {
                error = strprintf("timeseries line %zu: %s", lineno,
                                  error.c_str());
                return "";
            }
            series.push_back(std::move(sample));
        }
    }

    std::string out = "recperf run report\n==================\n\n";
    if (have_metrics) {
        out += latencySection(metrics);
        out += operatorSection(metrics);
        out += cacheSection(metrics);
        out += rooflineSection(metrics);
    }
    out += sloSection(metrics, have_metrics, series);
    if (have_metrics)
        out += tailSection(metrics);
    if (have_trace)
        out += traceSection(trace);
    if (!have_metrics && !have_trace && series.empty())
        out += "(no artifacts given: pass --metrics, --trace, and/or "
               "--timeseries)\n";
    return out;
}

} // namespace obs
} // namespace recperf
