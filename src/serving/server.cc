#include "serving/server.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/logging.hh"
#include "obs/hw_counters.hh"
#include "obs/request_log.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "resilience/deadline.hh"

namespace recperf {

namespace {

constexpr uint64_t kTenantRegionBytes = 1ull << 44;

/** Min-heap entry: (free time, worker index). */
using WorkerSlot = std::pair<double, size_t>;

} // namespace

double
ServingStats::goodThroughput() const
{
    return duration > 0.0 ? static_cast<double>(slaMet) / duration : 0.0;
}

double
ServingStats::totalThroughput() const
{
    return duration > 0.0
        ? static_cast<double>(slaMet + slaMissed) / duration : 0.0;
}

double
ServingStats::slaFraction() const
{
    uint64_t total = completedItems();
    return total > 0 ? static_cast<double>(slaMet) /
        static_cast<double>(total) : 0.0;
}

double
ServingStats::servedFraction() const
{
    uint64_t offered = offeredItems();
    return offered > 0 ? static_cast<double>(completedItems()) /
        static_cast<double>(offered) : 0.0;
}

double
ServingStats::qualityScore() const
{
    uint64_t served = completedItems();
    return served > 0 ? qualitySum / static_cast<double>(served) : 0.0;
}

double
ServingStats::deadlineGoodput() const
{
    return duration > 0.0
        ? static_cast<double>(deadlineMet) / duration : 0.0;
}

void
ServingStats::exportTo(obs::MetricsRegistry &registry) const
{
    registry.counter("serving.items.sla_met").add(slaMet);
    registry.counter("serving.items.sla_missed").add(slaMissed);
    registry.counter("serving.items.shed").add(shedItems);
    registry.counter("serving.items.dropped_low_priority")
        .add(droppedLowPriority);
    registry.counter("serving.batches.total").add(serviceTime.count());
    registry.counter("serving.batches.degraded").add(degradedBatches);
    // Deadline/brownout telemetry appears only when those features saw
    // traffic, so legacy runs export byte-identical metric sets.
    if (shedAdmissionDeadline)
        registry.counter("serving.shed.admission_deadline")
            .add(shedAdmissionDeadline);
    if (deadlineShedQueue)
        registry.counter("serving.deadline.shed").add(deadlineShedQueue);
    if (deadlineCancelled)
        registry.counter("serving.deadline.cancelled")
            .add(deadlineCancelled);
    if (deadlineMet) {
        registry.counter("serving.deadline.met").add(deadlineMet);
        registry.gauge("serving.throughput.deadline_goodput_items_per_s")
            .set(deadlineGoodput());
    }
    if (brownoutTransitions)
        registry.counter("serving.brownout.transitions")
            .add(brownoutTransitions);
    bool any_level = false;
    for (int l = 1; l < kBrownoutLevels; ++l)
        any_level = any_level || brownoutItems[l] > 0;
    if (any_level || brownoutTransitions) {
        for (int l = 0; l < kBrownoutLevels; ++l) {
            registry.counter(strprintf("serving.brownout.items.l%d", l))
                .add(brownoutItems[l]);
        }
        registry.gauge("serving.brownout.quality_score")
            .set(qualityScore());
        registry.gauge("serving.brownout.final_level")
            .set(static_cast<double>(finalBrownoutLevel));
    }
    registry.gauge("serving.duration_seconds").set(duration);
    registry.gauge("serving.throughput.within_sla_items_per_s")
        .set(goodThroughput());
    registry.gauge("serving.throughput.total_items_per_s")
        .set(totalThroughput());

    obs::LatencyHistogram item =
        registry.histogram("serving.item_latency_seconds");
    for (double s : itemLatency.samples())
        item.record(s);
    obs::LatencyHistogram service =
        registry.histogram("serving.batch_service_seconds");
    for (double s : serviceTime.samples())
        service.record(s);
    obs::LatencyHistogram fc =
        registry.histogram("serving.batch_fc_seconds");
    for (double s : fcTime.samples())
        fc.record(s);
}

std::string
ServingStats::summarize(const obs::MetricsSnapshot &snap)
{
    uint64_t met = snap.counter("serving.items.sla_met");
    uint64_t missed = snap.counter("serving.items.sla_missed");
    uint64_t shed = snap.counter("serving.items.shed");
    uint64_t dropped = snap.counter("serving.items.dropped_low_priority");
    uint64_t shed_deadline = snap.counter("serving.shed.admission_deadline");
    uint64_t deadline_shed = snap.counter("serving.deadline.shed");
    uint64_t cancelled = snap.counter("serving.deadline.cancelled");
    uint64_t completed = met + missed;
    uint64_t offered = completed + shed + dropped + shed_deadline +
        deadline_shed + cancelled;
    double duration = snap.gauge("serving.duration_seconds");

    std::string out;
    out += strprintf("  offered items:     %12llu\n",
                     static_cast<unsigned long long>(offered));
    out += strprintf("  completed items:   %12llu\n",
                     static_cast<unsigned long long>(completed));
    if (shed)
        out += strprintf("  shed at admission: %12llu\n",
                         static_cast<unsigned long long>(shed));
    if (shed_deadline)
        out += strprintf("  shed (deadline < p50 est): %4llu\n",
                         static_cast<unsigned long long>(shed_deadline));
    if (deadline_shed)
        out += strprintf("  deadline-shed in queue: %7llu\n",
                         static_cast<unsigned long long>(deadline_shed));
    if (cancelled)
        out += strprintf("  cancelled mid-batch: %10llu\n",
                         static_cast<unsigned long long>(cancelled));
    if (dropped)
        out += strprintf("  dropped low-prio:  %12llu\n",
                         static_cast<unsigned long long>(dropped));
    uint64_t degraded = snap.counter("serving.batches.degraded");
    if (degraded) {
        out += strprintf("  degraded batches:  %12llu of %llu\n",
                         static_cast<unsigned long long>(degraded),
                         static_cast<unsigned long long>(
                             snap.counter("serving.batches.total")));
    }
    if (completed) {
        out += strprintf("  within SLA:        %12.1f%%\n",
                         100.0 * static_cast<double>(met) /
                             static_cast<double>(completed));
    }
    if (duration > 0.0) {
        out += strprintf("  duration:          %12.3f s\n", duration);
        out += strprintf(
            "  goodput:           %12.0f items/s within SLA\n",
            snap.gauge("serving.throughput.within_sla_items_per_s"));
    }
    uint64_t deadline_met = snap.counter("serving.deadline.met");
    if (deadline_met && duration > 0.0) {
        out += strprintf(
            "  deadline goodput:  %12.0f items/s within deadline\n",
            snap.gauge("serving.throughput.deadline_goodput_items_per_s"));
    }
    uint64_t brownout_transitions =
        snap.counter("serving.brownout.transitions");
    uint64_t level_items[kBrownoutLevels];
    bool browned = brownout_transitions > 0;
    for (int l = 0; l < kBrownoutLevels; ++l) {
        level_items[l] =
            snap.counter(strprintf("serving.brownout.items.l%d", l));
        browned = browned || (l > 0 && level_items[l] > 0);
    }
    if (browned) {
        out += strprintf("  brownout:          %12llu transitions, "
                         "quality %.3f\n",
                         static_cast<unsigned long long>(
                             brownout_transitions),
                         snap.gauge("serving.brownout.quality_score"));
        for (int l = 0; l < kBrownoutLevels; ++l) {
            if (!level_items[l])
                continue;
            out += strprintf(
                "    level %d (%s): %llu items\n", l,
                brownoutLevelName(static_cast<BrownoutLevel>(l)),
                static_cast<unsigned long long>(level_items[l]));
        }
    }
    struct Row { const char *label; const char *name; };
    static constexpr Row kRows[] = {
        {"item latency", "serving.item_latency_seconds"},
        {"batch service", "serving.batch_service_seconds"},
        {"batch FC time", "serving.batch_fc_seconds"},
    };
    for (const Row &row : kRows) {
        const obs::HistogramSnapshot *h = snap.histogram(row.name);
        if (!h || h->count == 0)
            continue;
        out += strprintf(
            "  %-14s mean %10s  p50 %10s  p95 %10s  p99 %10s\n",
            row.label, obs::humanSeconds(h->mean()).c_str(),
            obs::humanSeconds(h->percentile(50)).c_str(),
            obs::humanSeconds(h->percentile(95)).c_str(),
            obs::humanSeconds(h->percentile(99)).c_str());
    }
    return out;
}

Server::Server(const MachineSpec &machine, const ModelConfig &config,
               const TimerOptions &timer_options,
               const ServerOptions &options)
    : machine_(machine), options_(options),
      jitter_rng_(options.seed ^ 0xa5a5a5a5ULL),
      arrival_rng_(options.seed ^ 0x5a5a5a5aULL),
      priority_rng_(options.seed ^ 0x3c3c3c3cULL)
{
    RP_ASSERT(options_.numWorkers >= 1, "server needs at least one worker");
    RP_ASSERT(options_.maxBatch >= 1, "maxBatch must be positive");
    if (options_.degrade.enabled) {
        RP_ASSERT(options_.degrade.degradedMaxBatch >= 1,
                  "degraded batch cap must be positive");
    }
    RP_ASSERT(options_.clusterReplicas >= 1,
              "the serving tier needs at least one replica");
    RP_ASSERT(options_.healthyReplicas <= options_.clusterReplicas,
              "healthy replicas (%u) cannot exceed the cluster's %u",
              options_.healthyReplicas, options_.clusterReplicas);
    std::string err = validateDeadlineSeconds(options_.deadlineSeconds);
    RP_ASSERT(err.empty(), "%s", err.c_str());
    err = options_.brownout.validate();
    RP_ASSERT(err.empty(), "%s", err.c_str());
    if (options_.faults.anyFaults())
        injector_ = std::make_unique<FaultInjector>(options_.faults, 0);

    hier_ = machine_.makeHierarchy(options_.numWorkers);
    bool ht = options_.numWorkers > machine_.coresPerSocket;
    for (uint32_t w = 0; w < options_.numWorkers; ++w) {
        TimerOptions topts = timer_options;
        topts.hyperthreading = ht;
        topts.seed = timer_options.seed + 0x2000ull * (w + 1);
        topts.batch = options_.maxBatch;
        auto timer = std::make_unique<ModelTimer>(machine_, config, topts);
        timer->attach(hier_.get(), w, kTenantRegionBytes * (w + 1));
        workers_.push_back(std::move(timer));
    }

    // Warm caches and converge the FC contention estimate (two passes,
    // as in ColocationSim). The final pass also seeds the p50 service
    // estimate that deadline admission uses before any batch has been
    // observed.
    std::vector<double> dram_bytes(workers_.size(), 0.0);
    for (int pass = 0; pass < 2; ++pass) {
        double service_sum = 0.0;
        uint64_t service_runs = 0;
        for (size_t w = 0; w < workers_.size(); ++w) {
            double observed = 0.0;
            for (int i = 0; i < 3; ++i) {
                service_sum += workers_[w]->run().totalSeconds();
                ++service_runs;
                observed += workers_[w]->lastDramBytes();
            }
            dram_bytes[w] = observed / 3.0;
        }
        if (service_runs > 0) {
            warmServiceEstimate_ =
                service_sum / static_cast<double>(service_runs);
        }
        double total = 0.0;
        for (double b : dram_bytes)
            total += b;
        for (size_t w = 0; w < workers_.size(); ++w) {
            workers_[w]->setContention(
                static_cast<uint32_t>(workers_.size()),
                total - dram_bytes[w]);
        }
    }
}

uint32_t
Server::numWorkers() const
{
    return static_cast<uint32_t>(workers_.size());
}

double
Server::healthyFraction() const
{
    uint32_t healthy = options_.healthyReplicas == 0
        ? options_.clusterReplicas : options_.healthyReplicas;
    return static_cast<double>(healthy) /
        static_cast<double>(options_.clusterReplicas);
}

double
Server::serviceBatch(size_t worker, int64_t batch, double now,
                     double *fc_seconds, BrownoutLevel level,
                     double *fault_mult)
{
    // Brownout levels shrink the modeled work. L1+ scores only a
    // fraction of the candidate set (smaller effective batch — every
    // request still gets an answer, from fewer scored candidates).
    int64_t effective = batch;
    if (level != BrownoutLevel::Full) {
        effective = std::max<int64_t>(
            1, static_cast<int64_t>(std::ceil(
                   static_cast<double>(batch) *
                   options_.brownout.truncateFraction)));
    }
    workers_[worker]->setBatch(effective);
    ModelTiming timing = workers_[worker]->run();
    // L2 skips low-value embedding tables; L3 answers from cached
    // (stale) pooled embeddings. Both scale the SLS ops *inside* the
    // timing record, so the per-op trace spans keep tiling the batch
    // span exactly and the FC share is untouched.
    if (level == BrownoutLevel::SkipTables ||
        level == BrownoutLevel::StaleEmbeddings) {
        double keep = level == BrownoutLevel::SkipTables
            ? 1.0 - options_.brownout.skipTableFraction : 0.0;
        for (OpTiming &op : timing.ops) {
            if (op.kind != OpKind::SLS)
                continue;
            op.seconds *= keep;
            op.computeSeconds *= keep;
            op.memorySeconds *= keep;
            op.dispatchSeconds *= keep;
            op.offloadSeconds *= keep;
            op.transferBytes =
                static_cast<uint64_t>(op.transferBytes * keep);
        }
    }
    double jitter = std::exp(jitter_rng_.nextGaussian() *
                             options_.jitterSigma);
    // The lognormal jitter is benign environment noise; the injected
    // fault multiplier is the straggler cause, reported separately so
    // the request log can split clean service from straggler excess.
    double fault = 1.0;
    if (injector_) {
        fault = injector_->serviceMultiplier(now);
        jitter *= fault;
    }
    if (fault_mult)
        *fault_mult = fault;
    if (fc_seconds)
        *fc_seconds = timing.secondsByKind(OpKind::FC) * jitter;
    // Per-op child spans tile the enclosing batch span exactly because
    // each op is stretched by the same jitter as the batch total.
    obs::Tracer &tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        emitOpSpans(tracer, timing, now,
                    static_cast<uint32_t>(1 + worker), jitter);
    }
    return timing.totalSeconds() * jitter;
}

ServingStats
Server::runOpenLoop(double items_per_second, uint64_t num_items)
{
    RP_ASSERT(items_per_second > 0.0, "arrival rate must be positive");
    RP_ASSERT(num_items > 0, "need at least one item");

    // Poisson arrivals.
    std::vector<double> arrivals;
    arrivals.reserve(num_items);
    double t = 0.0;
    for (uint64_t i = 0; i < num_items; ++i) {
        t += arrival_rng_.nextExponential(items_per_second);
        arrivals.push_back(t);
    }

    // Priorities are drawn from their own stream so enabling degraded
    // mode does not perturb the arrival process.
    std::vector<bool> low_priority;
    if (options_.degrade.enabled &&
        options_.degrade.lowPriorityFraction > 0.0) {
        low_priority.resize(arrivals.size());
        for (size_t i = 0; i < arrivals.size(); ++i) {
            low_priority[i] = priority_rng_.nextBool(
                options_.degrade.lowPriorityFraction);
        }
    }

    obs::Tracer &tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        tracer.nameLane(0, "batching queue");
        for (size_t w = 0; w < workers_.size(); ++w) {
            tracer.nameLane(static_cast<uint32_t>(1 + w),
                            strprintf("worker %zu", w));
        }
    }

    // The measurement window starts here: drop constructor warm-up
    // telemetry and anchor the time-series cadence at t = 0.
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled())
        telem.reset();
    obs::TimeSeriesSampler &sampler = obs::TimeSeriesSampler::global();
    if (sampler.enabled())
        sampler.reset();
    obs::RequestLogger &rlog = obs::RequestLogger::global();
    const bool rlog_on = rlog.enabled();
    if (rlog_on)
        rlog.reset();

    std::priority_queue<WorkerSlot, std::vector<WorkerSlot>,
                        std::greater<>> free_at;
    for (size_t w = 0; w < workers_.size(); ++w)
        free_at.emplace(0.0, w);

    // Wait budget of the admission controller: an item whose queueing
    // delay already exceeds this fraction of the SLA is shed, leaving
    // the remainder of the SLA for service time. With dead replicas in
    // the tier, the survivors carry their traffic, so both overload
    // responses arm earlier by the healthy fraction.
    double healthy = healthyFraction();
    double wait_budget = options_.slaSeconds *
        options_.admission.maxWaitFraction * healthy;
    double degrade_backlog = options_.degrade.backlogFactor * healthy *
        static_cast<double>(options_.maxBatch);

    // Deadline machinery: every item carries the same relative budget
    // from its arrival. A private burn-rate sensor feeds the brownout
    // controller — private so its windows/budget can differ from the
    // exported slo.* gauges, and so it sees shed/cancelled items too.
    const bool deadline_on = options_.deadlineSeconds > 0.0;
    const double deadline_budget = options_.deadlineSeconds;
    obs::TimeSeriesSampler brown_sensor;
    BrownoutController brownout(options_.brownout);
    if (options_.brownout.enabled) {
        obs::TimeSeriesOptions sensor_opts;
        sensor_opts.shortWindowSeconds =
            options_.brownout.shortWindowSeconds;
        sensor_opts.longWindowSeconds =
            options_.brownout.longWindowSeconds;
        sensor_opts.errorBudget = options_.brownout.errorBudget;
        brown_sensor.configure(sensor_opts);
        brown_sensor.setEnabled(true);
    }
    // Recent per-batch service times; their p50 is the admission
    // estimate a deadline is checked against. Seeded by the warm-up
    // calibration until real batches accumulate.
    std::vector<double> recent_service;
    auto service_p50 = [&]() {
        return recent_service.empty() ? warmServiceEstimate_
                                      : percentile(recent_service, 50.0);
    };
    auto observe_outcome = [&](double t, double latency, bool violated) {
        sampler.observeItem(t, latency, violated);
        brown_sensor.observeItem(t, latency, violated);
    };
    // One causal record per item that never reached a worker: all of
    // its life was queue wait, so the phase vector is pure Queue and
    // tiles the latency trivially.
    auto shed_record = [&rlog](uint64_t id, double arrival, double at,
                               obs::RequestOutcome outcome,
                               bool violated, double estimate,
                               BrownoutLevel lvl, bool was_degraded) {
        obs::RequestRecord rec;
        rec.id = id;
        rec.arrival = arrival;
        rec.start = at;
        rec.finish = at;
        rec.latency = at - arrival;
        rec.outcome = outcome;
        rec.slaViolated = violated;
        rec.brownoutLevel = static_cast<uint8_t>(lvl);
        rec.degraded = was_degraded;
        rec.admissionEstimate = static_cast<float>(estimate);
        rec.phase[static_cast<size_t>(obs::RequestPhase::Queue)] =
            rec.latency;
        rlog.record(rec);
    };

    ServingStats stats;
    size_t next = 0;
    double last_finish = 0.0;
    double last_assembly_end = 0.0;
    while (next < arrivals.size()) {
        // Cooperative cancellation of the whole run: stop between
        // batches, never admitting the remaining arrivals. Counters
        // stay exact because those items are not counted as offered.
        if (cancel_ && cancel_->cancelled()) {
            if (tracer.enabled())
                tracer.instant("deadline", "run_cancelled", last_finish,
                               0);
            break;
        }
        auto [t_free, w] = free_at.top();
        free_at.pop();

        double start = std::max(t_free, arrivals[next]);

        // Backlog of items already waiting at this instant.
        size_t backlog_end = next;
        while (backlog_end < arrivals.size() &&
               arrivals[backlog_end] <= start) {
            ++backlog_end;
        }
        size_t backlog = backlog_end - next;

        bool degraded = options_.degrade.enabled &&
            static_cast<double>(backlog) > degrade_backlog;
        int64_t batch_cap = degraded
            ? std::min(options_.degrade.degradedMaxBatch,
                       options_.maxBatch)
            : options_.maxBatch;

        // The brownout ladder re-evaluates at every batch-formation
        // instant from the controller's own burn-rate sensor.
        BrownoutLevel level = BrownoutLevel::Full;
        if (options_.brownout.enabled) {
            BrownoutLevel prev = brownout.level();
            level = brownout.update(
                start,
                brown_sensor.burnRate(
                    start, options_.brownout.shortWindowSeconds),
                brown_sensor.burnRate(
                    start, options_.brownout.longWindowSeconds));
            if (level != prev) {
                ++stats.brownoutTransitions;
                if (tracer.enabled()) {
                    tracer.instant(
                        "brownout", "level", start, 0,
                        {{"from",
                          strprintf("%d", static_cast<int>(prev))},
                         {"to",
                          strprintf("%d", static_cast<int>(level))}});
                }
            }
        }

        double service_estimate = service_p50();

        // Form the batch, shedding and dropping as policy dictates.
        // An item arriving exactly at `start` has zero wait, so the
        // loop always consumes at least one item and terminates.
        std::vector<double> batch_arrivals;
        std::vector<uint64_t> batch_ids;
        while (next < backlog_end &&
               static_cast<int64_t>(batch_arrivals.size()) < batch_cap) {
            double wait = start - arrivals[next];
            if (deadline_on) {
                Deadline dl{arrivals[next], deadline_budget};
                if (dl.expired(start)) {
                    // The budget burned away in the queue; serving now
                    // would only complete late. Deadline-shed.
                    ++stats.deadlineShedQueue;
                    if (tracer.enabled()) {
                        tracer.instant("deadline", "expired_queue",
                                       start, 0);
                    }
                    if (rlog_on) {
                        shed_record(
                            next, arrivals[next], start,
                            obs::RequestOutcome::ShedDeadlineQueue,
                            true, service_estimate, level, degraded);
                    }
                    observe_outcome(start, wait, true);
                    ++next;
                    continue;
                }
                if (dl.remaining(start) < service_estimate) {
                    // Admission rejection: even a median-speed batch
                    // starting right now would blow the deadline.
                    ++stats.shedAdmissionDeadline;
                    if (tracer.enabled()) {
                        tracer.instant("deadline", "shed_admission",
                                       start, 0);
                    }
                    if (rlog_on) {
                        shed_record(
                            next, arrivals[next], start,
                            obs::RequestOutcome::ShedAdmissionDeadline,
                            true, service_estimate, level, degraded);
                    }
                    observe_outcome(start, wait, true);
                    ++next;
                    continue;
                }
            }
            if (options_.admission.enabled && wait > wait_budget) {
                ++stats.shedItems;
                if (tracer.enabled())
                    tracer.instant("serve", "shed", start, 0);
                if (rlog_on) {
                    shed_record(next, arrivals[next], start,
                                obs::RequestOutcome::ShedAdmission,
                                false, service_estimate, level,
                                degraded);
                }
                ++next;
                continue;
            }
            if (degraded && !low_priority.empty() && low_priority[next]) {
                ++stats.droppedLowPriority;
                if (tracer.enabled())
                    tracer.instant("serve", "drop_low_priority", start, 0);
                if (rlog_on) {
                    shed_record(next, arrivals[next], start,
                                obs::RequestOutcome::DroppedLowPriority,
                                false, service_estimate, level,
                                degraded);
                }
                ++next;
                continue;
            }
            batch_arrivals.push_back(arrivals[next]);
            batch_ids.push_back(next);
            ++next;
        }
        if (batch_arrivals.empty()) {
            // Everything waiting was shed or dropped; the worker polls
            // again for the (now nearer) head of the queue.
            free_at.emplace(start, w);
            continue;
        }
        if (degraded)
            ++stats.degradedBatches;

        double fc = 0.0;
        double fault_mult = 1.0;
        double service = serviceBatch(
            w, static_cast<int64_t>(batch_arrivals.size()), start, &fc,
            level, &fault_mult);
        double finish = start + service;
        stats.serviceTime.add(service);
        stats.fcTime.add(fc);
        recent_service.push_back(service);
        if (recent_service.size() > 64)
            recent_service.erase(recent_service.begin());
        if (tracer.enabled()) {
            std::string items =
                strprintf("%zu", batch_arrivals.size());
            std::vector<std::pair<std::string, std::string>> args = {
                {"items", items},
                {"degraded", degraded ? "true" : "false"}};
            if (options_.brownout.enabled) {
                args.emplace_back(
                    "level", strprintf("%d", static_cast<int>(level)));
            }
            // The queue lane shows when each batch was at the head of
            // the queue being assembled. Batches overlap in queueing
            // time under backlog (the next batch's items arrive while
            // the previous one waits), so the span is clipped to start
            // after the previous assembly ends — batch starts are
            // monotone, keeping the lane's spans disjoint and the
            // trace nesting-clean at any load.
            double assembly_start =
                std::max(batch_arrivals.front(), last_assembly_end);
            tracer.span("serve", "batch_assembly", assembly_start,
                        start, 0, {{"items", items}});
            last_assembly_end = start;
            tracer.span("serve", "batch", start, finish,
                        static_cast<uint32_t>(1 + w), args);
        }

        // Counter events ride the batch start timestamp, which the
        // min-heap keeps monotonically non-decreasing — so counter
        // tracks stay valid Chrome-trace series and bit-identical
        // across host thread counts.
        if (telem.enabled())
            telem.emitCounters(tracer, start, 0);
        sampler.tick(start);

        // Served-item phase decomposition: the span on the worker is
        // the batch service time; dividing out the injected fault
        // multiplier splits it into clean service and straggler
        // excess, and the rest of the latency is queue wait.
        double service_clean = service / fault_mult;
        double service_straggler = service - service_clean;
        auto served_record = [&](uint64_t id, double arrival,
                                 double latency,
                                 obs::RequestOutcome outcome,
                                 bool violated) {
            obs::RequestRecord rec;
            rec.id = id;
            rec.arrival = arrival;
            rec.start = start;
            rec.finish = finish;
            rec.latency = latency;
            rec.outcome = outcome;
            rec.slaViolated = violated;
            rec.brownoutLevel = static_cast<uint8_t>(level);
            rec.degraded = degraded;
            rec.batchItems =
                static_cast<uint32_t>(batch_arrivals.size());
            rec.admissionEstimate =
                static_cast<float>(service_estimate);
            rec.phase[static_cast<size_t>(
                obs::RequestPhase::Queue)] = start - arrival;
            rec.phase[static_cast<size_t>(
                obs::RequestPhase::Service)] = service_clean;
            rec.phase[static_cast<size_t>(
                obs::RequestPhase::Straggler)] = service_straggler;
            rlog.record(rec);
        };
        for (size_t i = 0; i < batch_arrivals.size(); ++i) {
            double arrival = batch_arrivals[i];
            double latency = finish - arrival;
            if (deadline_on && latency > deadline_budget) {
                // The cancellation token fired mid-batch for this
                // item: the batch finished past its deadline, so its
                // answer is abandoned, not delivered late.
                ++stats.deadlineCancelled;
                if (tracer.enabled()) {
                    tracer.instant("deadline", "cancelled", finish,
                                   static_cast<uint32_t>(1 + w));
                }
                if (rlog_on) {
                    served_record(batch_ids[i], arrival, latency,
                                  obs::RequestOutcome::Cancelled,
                                  true);
                }
                observe_outcome(finish, latency, true);
                continue;
            }
            stats.itemLatency.add(latency);
            bool violated = latency > options_.slaSeconds;
            if (violated)
                ++stats.slaMissed;
            else
                ++stats.slaMet;
            if (deadline_on)
                ++stats.deadlineMet;
            if (options_.brownout.enabled) {
                ++stats.brownoutItems[static_cast<int>(level)];
                stats.qualitySum +=
                    options_.brownout.qualityScore(level);
            }
            if (rlog_on) {
                served_record(batch_ids[i], arrival, latency,
                              obs::RequestOutcome::Served, violated);
            }
            observe_outcome(finish, latency, violated);
        }
        last_finish = std::max(last_finish, finish);
        free_at.emplace(finish, w);
    }

    if (telem.enabled())
        telem.emitCounters(tracer, last_finish, 0);
    sampler.tick(last_finish);

    stats.finalBrownoutLevel =
        static_cast<uint32_t>(brownout.level());
    stats.duration = last_finish;
    return stats;
}

ServingStats
Server::runClosedLoop(uint64_t batches_per_worker)
{
    RP_ASSERT(batches_per_worker > 0, "need at least one batch");

    obs::Tracer &tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        for (size_t w = 0; w < workers_.size(); ++w) {
            tracer.nameLane(static_cast<uint32_t>(1 + w),
                            strprintf("worker %zu", w));
        }
    }

    ServingStats stats;
    std::vector<double> busy(workers_.size(), 0.0);
    // Round-robin so tenant cache streams interleave realistically.
    for (uint64_t b = 0; b < batches_per_worker; ++b) {
        for (size_t w = 0; w < workers_.size(); ++w) {
            double fc = 0.0;
            double service = serviceBatch(w, options_.maxBatch, busy[w],
                                          &fc);
            stats.serviceTime.add(service);
            stats.fcTime.add(fc);
            if (tracer.enabled()) {
                tracer.span("serve", "batch", busy[w], busy[w] + service,
                            static_cast<uint32_t>(1 + w),
                            {{"items",
                              strprintf("%lld",
                                        static_cast<long long>(
                                            options_.maxBatch))}});
            }
            busy[w] += service;
            for (int64_t i = 0; i < options_.maxBatch; ++i) {
                stats.itemLatency.add(service);
                if (service <= options_.slaSeconds)
                    ++stats.slaMet;
                else
                    ++stats.slaMissed;
            }
        }
    }
    stats.duration = *std::max_element(busy.begin(), busy.end());
    return stats;
}

} // namespace recperf
