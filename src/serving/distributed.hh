/**
 * @file
 * Sharded (distributed) recommendation inference.
 *
 * Section VII notes the open-source benchmark "can be used to analyze
 * scheduling decisions, such as running recommendation models across
 * many nodes (distributed inference)". The standard sharding for
 * embedding-dominated models is table-wise: each node holds a subset of
 * the embedding tables, executes its SparseLengthsSum share in
 * parallel, and ships the pooled vectors to an aggregator that runs the
 * interaction and Top-FC. Latency = slowest shard + network transfer +
 * aggregator compute.
 */

#ifndef RECPERF_SERVING_DISTRIBUTED_HH
#define RECPERF_SERVING_DISTRIBUTED_HH

#include <memory>
#include <vector>

#include "timing/model_timer.hh"

namespace recperf {

/** Data-center network between shard nodes and the aggregator. */
struct NetworkConfig
{
    double rttUs = 10.0;          ///< one round trip, kernel bypass
    double bandwidthGBps = 3.0;   ///< per-link (25 GbE-class)
};

/** Per-inference latency breakdown of a sharded execution. */
struct ShardedResult
{
    double totalSeconds = 0.0;
    double slowestShardSeconds = 0.0; ///< parallel SLS across nodes
    double networkSeconds = 0.0;      ///< pooled-vector all-to-one
    double aggregatorSeconds = 0.0;   ///< bottom/top MLP + interaction

    /** Pooled-embedding bytes crossing the network per inference. */
    double networkBytes = 0.0;
};

/**
 * Times table-wise sharded inference of one model over N nodes of the
 * same machine type.
 */
class ShardedInference
{
  public:
    /**
     * @param num_nodes embedding shard nodes (>= 1). With one node the
     *        execution degenerates to the single-machine model (plus
     *        no network cost).
     */
    ShardedInference(const MachineSpec &machine, const ModelConfig &config,
                     uint32_t num_nodes, const NetworkConfig &network,
                     const TimerOptions &options);

    /** Average per-inference latency in steady state. */
    ShardedResult run(int warmup_iters, int measure_iters);

    uint32_t numNodes() const;

  private:
    MachineSpec machine_;
    ModelConfig config_;
    NetworkConfig network_;
    TimerOptions options_;
    /** One timer per shard, holding that node's table subset. */
    std::vector<std::unique_ptr<ModelTimer>> shard_timers_;
    /** Timer for the aggregator's dense work (no tables). */
    std::unique_ptr<ModelTimer> agg_timer_;
};

} // namespace recperf

#endif // RECPERF_SERVING_DISTRIBUTED_HH
