/**
 * @file
 * Sharded (distributed) recommendation inference.
 *
 * Section VII notes the open-source benchmark "can be used to analyze
 * scheduling decisions, such as running recommendation models across
 * many nodes (distributed inference)". The standard sharding for
 * embedding-dominated models is table-wise: each node holds a subset of
 * the embedding tables, executes its SparseLengthsSum share in
 * parallel, and ships the pooled vectors to an aggregator that runs the
 * interaction and Top-FC. Latency = slowest shard + network transfer +
 * aggregator compute.
 */

#ifndef RECPERF_SERVING_DISTRIBUTED_HH
#define RECPERF_SERVING_DISTRIBUTED_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/cancellation.hh"
#include "core/stats.hh"
#include "obs/metrics.hh"
#include "resilience/deadline.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "resilience/replica_set.hh"
#include "resilience/sdc.hh"
#include "timing/model_timer.hh"

namespace recperf {

/** Data-center network between shard nodes and the aggregator. */
struct NetworkConfig
{
    double rttUs = 10.0;          ///< one round trip, kernel bypass
    double bandwidthGBps = 3.0;   ///< per-link (25 GbE-class)
};

/** Per-inference latency breakdown of a sharded execution. */
struct ShardedResult
{
    double totalSeconds = 0.0;
    double slowestShardSeconds = 0.0; ///< parallel SLS across nodes
    double networkSeconds = 0.0;      ///< pooled-vector all-to-one
    double aggregatorSeconds = 0.0;   ///< bottom/top MLP + interaction

    /** Pooled-embedding bytes crossing the network per inference. */
    double networkBytes = 0.0;
};

/**
 * Outcome of a fault-injected sharded run with mitigation policies
 * (timeouts, retries, hedging) active.
 */
struct ResilientShardedResult
{
    /** End-to-end latency of each *completed* inference (seconds). */
    LatencySample latency;

    /** Inferences whose shards all answered (possibly after retries or
     *  via a hedge). */
    uint64_t completed = 0;

    /** Inferences abandoned after retry exhaustion on some shard. */
    uint64_t failed = 0;

    /** Inferences cancelled because the deadline budget expired (or a
     *  cancellation token fired) mid-fan-out — counted as
     *  deadline-shed, never as late completions. */
    uint64_t deadlineExpired = 0;

    /** Attempts skipped outright because the remaining budget could
     *  not cover the p50 of a fresh attempt (fail fast, no retry). */
    uint64_t deadlineFastFails = 0;

    uint64_t hedgesIssued = 0;

    /** Hedges that beat (or rescued) the primary request. */
    uint64_t hedgeWins = 0;

    /** Re-sends after a timeout or a down shard. */
    uint64_t retries = 0;

    /** Attempts abandoned at the timeout. */
    uint64_t timeouts = 0;

    /** Attempts that hit a shard in its down window. */
    uint64_t shardDownEncounters = 0;

    /** Duplicated shard compute bought by hedging (seconds). */
    double hedgeExtraSeconds = 0.0;

    /** Duplicated pooled-vector traffic bought by hedging (bytes). */
    double hedgeExtraBytes = 0.0;

    /** Time burnt in timed-out and failed attempts (seconds). */
    double wastedSeconds = 0.0;

    /** Virtual wall-clock span of the measured loop (seconds). */
    double duration = 0.0;

    /** Fraction of inferences that completed (deadline-cancelled ones
     *  count against availability like failures). */
    double availability() const;

    /** Completed inferences per second of virtual wall-clock. */
    double goodput() const;
};

/**
 * Outcome of a replicated run: the resilient accounting plus the
 * failover/breaker/warm-up bookkeeping of the replica layer.
 */
struct ReplicatedShardedResult : ResilientShardedResult
{
    /** Requests completed by a replica other than the routed primary
     *  (down-rescue hedges and post-error re-routes). */
    uint64_t failovers = 0;

    /** Attempts for which every replica's breaker rejected the
     *  request. */
    uint64_t breakerRejects = 0;

    /** Breaker trips (closed/half-open -> open) across all replicas. */
    uint64_t breakerOpens = 0;

    /** Breaker recoveries (half-open -> closed) across all replicas. */
    uint64_t breakerCloses = 0;

    /** Requests admitted as half-open probes. */
    uint64_t probesAdmitted = 0;

    /** Routing decisions overridden because the primary replica's
     *  EWMA latency exceeded the remaining deadline budget (failover
     *  to the alternate, or abandonment when none fits). */
    uint64_t replicaSkips = 0;

    /** Extra service seconds paid to post-recovery cold replicas. */
    double warmupPenaltySeconds = 0.0;

    /** Resolved post-recovery multiplier (auto: cold/steady ratio). */
    double warmupFactorUsed = 1.0;
};

/**
 * Configuration of one sharded closed-loop run — the single entry
 * point. The defaults describe a clean run: no faults, no hedging, no
 * replica layer. Turning knobs composes: any FaultOptions activates the fault
 * schedule, engaging `replicas` activates the replica/failover layer
 * (breakers, health routing, warm-up — even with replicas.replicas ==
 * 1, which exercises that machinery without a failover target), and
 * `chaos` layers scripted fault windows on top.
 */
struct RunOptions
{
    /**
     * Warm-up iterations before measurement; they also calibrate the
     * auto hedge delay (p95 of clean shard times) and, with the
     * replica layer, the post-recovery warm-up factor. Clamped to >= 1
     * (>= 2 with replicas, whose calibration needs a cold and a steady
     * sample).
     */
    int warmupIters = 20;

    int measureIters = 100;

    /** Fault schedule of shard (or replica) failure processes. */
    FaultOptions faults;

    /** Timeout / retry / backoff mitigation. */
    RetryPolicy retry;

    /** Tail-latency hedging (delaySeconds == 0 auto-calibrates). */
    HedgePolicy hedge;

    /**
     * Replication of every shard. Disengaged (nullopt) runs the
     * single-copy path where a hedge assumes an implicit spare
     * replica; engaged runs ReplicaSet routing with breakers and
     * warm-up bookkeeping.
     */
    std::optional<ReplicaOptions> replicas;

    /** Optional scripted chaos windows (replica-layer runs only). */
    const ChaosSchedule *chaos = nullptr;

    /**
     * Per-inference deadline budget; 0 disables. With a budget, every
     * retry/hedge timeout is clamped to the remaining budget, attempts
     * fail fast (no retry) once the budget cannot cover the p50 of a
     * fresh attempt, replica routing skips copies whose EWMA latency
     * exceeds the budget, and an expired budget cancels the remaining
     * shard fan-out — counted as deadlineExpired, never as a late
     * completion.
     */
    double deadlineSeconds = 0.0;

    /**
     * Optional external cancellation token, polled before every shard
     * attempt; once it fires, in-flight and subsequent inferences are
     * abandoned and counted as deadlineExpired, keeping
     * completed + failed + deadlineExpired == measureIters exact.
     * Not owned; may be null.
     */
    const CancelToken *cancel = nullptr;

    /**
     * The silent-data-corruption defense ladder (scrubbing, inline
     * sampled verification, output guards, canaries, quarantine and
     * repair). A controller is engaged when faults.corruption injects
     * events or any defense knob is on; at the defaults the serving
     * loop is byte-identical to a run without this subsystem.
     */
    SdcOptions sdc;

    /**
     * Optional reproducibility log: every drawn corruption event, node
     * up/down transition and load spike is appended as it happens.
     * Not owned; may be null.
     */
    FaultLog *faultLog = nullptr;

    /**
     * Optional compute-backend override: when engaged, every shard
     * timer (and the aggregator) is rebound to this backend at run
     * start. Disengaged keeps whatever TimerOptions::backend the
     * timers were constructed with.
     */
    std::optional<BackendConfig> backend;
};

/**
 * Everything one sharded run reports: the resilient and replica-layer
 * accounting plus the mean latency breakdown of completed inferences
 * (the legacy ShardedResult view).
 */
struct RunResult : ReplicatedShardedResult
{
    /** Mean completed-inference latency (slowest + network + agg). */
    double totalSeconds = 0.0;

    /** Mean winning slowest-shard time over completed inferences. */
    double slowestShardSeconds = 0.0;

    /** Pooled-vector all-to-one transfer time per inference. */
    double networkSeconds = 0.0;

    /** Mean aggregator (interaction + MLP) time per inference. */
    double aggregatorSeconds = 0.0;

    /** Pooled-embedding bytes crossing the network per inference. */
    double networkBytes = 0.0;

    /** SDC defense accounting; active only when a controller ran. */
    SdcStats sdc;

    /** Slice down to the legacy per-inference breakdown. */
    ShardedResult breakdown() const
    {
        return {totalSeconds, slowestShardSeconds, networkSeconds,
                aggregatorSeconds, networkBytes};
    }

    /**
     * Export counters/latencies into @p registry under the `sharded.`
     * prefix. Like ServingStats::exportTo, called once per run.
     */
    void exportTo(obs::MetricsRegistry &registry) const;
};

/**
 * Times table-wise sharded inference of one model over N nodes of the
 * same machine type.
 */
class ShardedInference
{
  public:
    /**
     * @param num_nodes embedding shard nodes (>= 1). With one node the
     *        execution degenerates to the single-machine model (plus
     *        no network cost).
     */
    ShardedInference(const MachineSpec &machine, const ModelConfig &config,
                     uint32_t num_nodes, const NetworkConfig &network,
                     const TimerOptions &options);

    /**
     * Closed-loop run under @p options — the one entry point.
     *
     * Per inference, every shard request is resolved against the fault
     * schedule: a down shard fails fast and is retried (with
     * exponential backoff) up to RetryPolicy::maxRetries times; an
     * attempt outliving the timeout is abandoned and retried; when
     * hedging is on, a duplicate request goes to a replica after the
     * hedge delay and the shard's latency becomes min(primary, hedge).
     * Retry exhaustion on any shard fails the inference — it never
     * hangs.
     *
     * With `options.replicas` engaged, each shard's R replicas run
     * independent failure processes (process r of shard s is seeded
     * stream s*R + r) and a ReplicaSet routes each attempt by
     * ReplicaOptions::router among replicas whose circuit breaker
     * admits the request; hedges (and rescues of a down primary) go to
     * the router's second-best replica rather than a blind duplicate.
     * Errors and timeouts feed each replica's HealthTracker and
     * CircuitBreaker, so a dead replica is failed over after
     * `breaker.errorThreshold` strikes and probed back in once it
     * recovers — paying a cold-cache warm-up penalty derived from the
     * shard's own timing model. `options.chaos` layers scripted fault
     * windows (kills, rack failures, straggler storms) on top.
     *
     * Fully deterministic for fixed seeds; with the default options
     * (no faults, no hedge, no replica layer) the result's breakdown()
     * is bit-identical to the legacy plain run.
     */
    RunResult run(const RunOptions &options);

    uint32_t numNodes() const;

  private:
    struct ShardOutcome
    {
        double elapsed = 0.0;
        bool ok = false;
        /** Abandoned by deadline/cancellation, not by retry
         *  exhaustion. */
        bool cancelled = false;
        /** Replica that served the winning attempt (0 single-copy). */
        uint32_t replica = 0;

        // Causal breakdown of `elapsed` for the request log. The
        // four duration fields plus serviceSeconds tile elapsed:
        // retryWait + hedgeWait + service + straggler + warmup.
        double serviceSeconds = 0.0;   ///< winning attempt's base time
        double stragglerSeconds = 0.0; ///< fault-multiplier excess
        double retryWaitSeconds = 0.0; ///< fail-fast/timeout/backoff
        double hedgeWaitSeconds = 0.0; ///< hedge delay on the winner
        double warmupSeconds = 0.0;    ///< cold-replica inflation
        uint16_t retries = 0;          ///< re-sends on this shard
        uint16_t hedges = 0;           ///< hedges fired on this shard
        uint16_t hedgeWins = 0;        ///< hedges that won or rescued
        bool hedgeWon = false;         ///< winner was the hedge
        bool deadlineClamped = false;  ///< budget bound a timeout
        uint32_t breakerRejects = 0;   ///< all-breakers-open rejects
        double healthEwma = 0.0;       ///< winner's EWMA after success
    };

    /**
     * Deadline context threaded through one inference's fan-out: the
     * budget anchored at the inference's issue time, the calibrated
     * p50 of a fresh attempt, the inference-local cancellation token
     * (set once any shard gives up, so sibling shards stop too), and
     * the caller's external token.
     */
    struct DeadlineCtx
    {
        Deadline deadline;
        double freshP50 = 0.0;
        CancelToken *token = nullptr;
        const CancelToken *external = nullptr;

        bool cancelled() const
        {
            return (token && token->cancelled()) ||
                (external && external->cancelled());
        }

        void cancel() const
        {
            if (token)
                token->cancel();
        }
    };

    ShardOutcome resolveShard(FaultInjector &injector,
                              const RetryPolicy &retry,
                              const HedgePolicy &hedge,
                              double hedge_delay, uint32_t shard,
                              double base_seconds, double now,
                              const DeadlineCtx &ctx,
                              const SdcController *sdc,
                              ResilientShardedResult *result);

    ShardOutcome resolveReplicated(FaultInjector &injector,
                                   ReplicaSet &set,
                                   const RetryPolicy &retry,
                                   const HedgePolicy &hedge,
                                   double hedge_delay, uint32_t shard,
                                   double base_seconds, double now,
                                   const ChaosSchedule *chaos,
                                   const DeadlineCtx &ctx,
                                   const SdcController *sdc,
                                   ReplicatedShardedResult *result);

    /** Pooled-vector bytes one shard ships per inference. */
    double shardNetworkBytes(uint32_t shard) const;

    /** Network cost of one inference (all-to-one pooled vectors). */
    double networkSeconds(double *bytes_out) const;

    MachineSpec machine_;
    ModelConfig config_;
    NetworkConfig network_;
    TimerOptions options_;
    /** One timer per shard, holding that node's table subset. */
    std::vector<std::unique_ptr<ModelTimer>> shard_timers_;
    /** Tables held by each shard (round-robin deal). */
    std::vector<int64_t> shard_tables_;
    /** Timer for the aggregator's dense work (no tables). */
    std::unique_ptr<ModelTimer> agg_timer_;
};

} // namespace recperf

#endif // RECPERF_SERVING_DISTRIBUTED_HH
