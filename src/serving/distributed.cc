#include "serving/distributed.hh"

#include <algorithm>

#include "core/logging.hh"

namespace recperf {

namespace {

/** Config for one shard node: only its share of the embedding tables. */
ModelConfig
shardConfig(const ModelConfig &base, uint32_t shard, uint32_t num_shards)
{
    ModelConfig cfg;
    cfg.name = base.name + strprintf("-shard%u", shard);
    cfg.modelClass = base.modelClass;
    cfg.denseFeatures = 0;
    cfg.bottomMlp = {};
    cfg.emb = base.emb;
    cfg.interaction = InteractionKind::Concat;
    cfg.topMlp = {1}; // placeholder head; only SLS time is extracted

    // Tables are dealt round-robin across shards so heterogeneous
    // per-table sizes spread evenly.
    cfg.emb.tableRows.clear();
    int64_t tables = 0;
    for (int64_t t = shard; t < base.emb.numTables;
         t += static_cast<int64_t>(num_shards)) {
        cfg.emb.tableRows.push_back(base.emb.rowsOf(t));
        ++tables;
    }
    cfg.emb.numTables = tables;
    cfg.validate();
    return cfg;
}

} // namespace

ShardedInference::ShardedInference(const MachineSpec &machine,
                                   const ModelConfig &config,
                                   uint32_t num_nodes,
                                   const NetworkConfig &network,
                                   const TimerOptions &options)
    : machine_(machine), config_(config), network_(network),
      options_(options)
{
    RP_ASSERT(num_nodes >= 1, "need at least one shard node");
    config_.validate();
    RP_ASSERT(config_.emb.numTables >= num_nodes,
              "%s: cannot spread %lld tables over %u nodes",
              config_.name.c_str(),
              static_cast<long long>(config_.emb.numTables), num_nodes);

    for (uint32_t s = 0; s < num_nodes; ++s) {
        TimerOptions opts = options_;
        opts.seed = options_.seed + 0x4000ull * (s + 1);
        shard_timers_.push_back(std::make_unique<ModelTimer>(
            machine_, shardConfig(config_, s, num_nodes), opts));
    }

    // The aggregator runs everything except the embedding gathers; it
    // is timed with the full model and its SLS share subtracted.
    agg_timer_ = std::make_unique<ModelTimer>(machine_, config_, options_);
}

uint32_t
ShardedInference::numNodes() const
{
    return static_cast<uint32_t>(shard_timers_.size());
}

ShardedResult
ShardedInference::run(int warmup_iters, int measure_iters)
{
    RP_ASSERT(measure_iters > 0, "need at least one measured iteration");

    for (int i = 0; i < warmup_iters; ++i) {
        for (auto &timer : shard_timers_)
            timer->run();
        agg_timer_->run();
    }

    ShardedResult result;
    for (int i = 0; i < measure_iters; ++i) {
        double slowest = 0.0;
        for (auto &timer : shard_timers_) {
            ModelTiming t = timer->run();
            slowest = std::max(slowest, t.secondsByKind(OpKind::SLS));
        }
        ModelTiming agg = agg_timer_->run();
        double agg_seconds = agg.totalSeconds() -
            agg.secondsByKind(OpKind::SLS);

        result.slowestShardSeconds += slowest;
        result.aggregatorSeconds += agg_seconds;
    }
    result.slowestShardSeconds /= measure_iters;
    result.aggregatorSeconds /= measure_iters;

    // Pooled vectors: one embDim-vector per (sample, table) crosses the
    // network; with one node everything is local.
    if (numNodes() > 1) {
        result.networkBytes = static_cast<double>(options_.batch) *
            static_cast<double>(config_.emb.numTables) *
            static_cast<double>(config_.emb.embDim) * 4.0;
        result.networkSeconds = network_.rttUs * 1e-6 +
            result.networkBytes / (network_.bandwidthGBps * 1e9);
    }

    result.totalSeconds = result.slowestShardSeconds +
        result.networkSeconds + result.aggregatorSeconds;
    return result;
}

} // namespace recperf
