#include "serving/distributed.hh"

#include <algorithm>
#include <utility>

#include "core/logging.hh"
#include "core/stats.hh"
#include "obs/hw_counters.hh"
#include "obs/request_log.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sched/brownout.hh"

namespace recperf {

namespace {

/** Config for one shard node: only its share of the embedding tables. */
ModelConfig
shardConfig(const ModelConfig &base, uint32_t shard, uint32_t num_shards)
{
    ModelConfig cfg;
    cfg.name = base.name + strprintf("-shard%u", shard);
    cfg.modelClass = base.modelClass;
    cfg.denseFeatures = 0;
    cfg.bottomMlp = {};
    cfg.emb = base.emb;
    cfg.interaction = InteractionKind::Concat;
    cfg.topMlp = {1}; // placeholder head; only SLS time is extracted

    // Tables are dealt round-robin across shards so heterogeneous
    // per-table sizes spread evenly.
    cfg.emb.tableRows.clear();
    int64_t tables = 0;
    for (int64_t t = shard; t < base.emb.numTables;
         t += static_cast<int64_t>(num_shards)) {
        cfg.emb.tableRows.push_back(base.emb.rowsOf(t));
        ++tables;
    }
    cfg.emb.numTables = tables;
    cfg.validate();
    return cfg;
}

} // namespace

double
ResilientShardedResult::availability() const
{
    uint64_t total = completed + failed + deadlineExpired;
    return total > 0 ? static_cast<double>(completed) /
        static_cast<double>(total) : 0.0;
}

double
ResilientShardedResult::goodput() const
{
    return duration > 0.0 ? static_cast<double>(completed) / duration
                          : 0.0;
}

ShardedInference::ShardedInference(const MachineSpec &machine,
                                   const ModelConfig &config,
                                   uint32_t num_nodes,
                                   const NetworkConfig &network,
                                   const TimerOptions &options)
    : machine_(machine), config_(config), network_(network),
      options_(options)
{
    RP_ASSERT(num_nodes >= 1, "need at least one shard node");
    config_.validate();
    RP_ASSERT(config_.emb.numTables >= num_nodes,
              "%s: cannot spread %lld tables over %u nodes",
              config_.name.c_str(),
              static_cast<long long>(config_.emb.numTables), num_nodes);

    for (uint32_t s = 0; s < num_nodes; ++s) {
        TimerOptions opts = options_;
        opts.seed = options_.seed + 0x4000ull * (s + 1);
        ModelConfig shard_cfg = shardConfig(config_, s, num_nodes);
        shard_tables_.push_back(shard_cfg.emb.numTables);
        shard_timers_.push_back(std::make_unique<ModelTimer>(
            machine_, shard_cfg, opts));
    }

    // The aggregator runs everything except the embedding gathers; it
    // is timed with the full model and its SLS share subtracted.
    agg_timer_ = std::make_unique<ModelTimer>(machine_, config_, options_);
}

uint32_t
ShardedInference::numNodes() const
{
    return static_cast<uint32_t>(shard_timers_.size());
}

void
RunResult::exportTo(obs::MetricsRegistry &registry) const
{
    registry.counter("sharded.inferences.completed").add(completed);
    registry.counter("sharded.inferences.failed").add(failed);
    registry.counter("sharded.hedges.issued").add(hedgesIssued);
    registry.counter("sharded.hedges.won").add(hedgeWins);
    registry.counter("sharded.retries").add(retries);
    registry.counter("sharded.timeouts").add(timeouts);
    registry.counter("sharded.shard_down_encounters")
        .add(shardDownEncounters);
    registry.counter("sharded.failovers").add(failovers);
    registry.counter("sharded.breaker.rejects").add(breakerRejects);
    registry.counter("sharded.breaker.opens").add(breakerOpens);
    registry.counter("sharded.breaker.closes").add(breakerCloses);
    registry.counter("sharded.breaker.probes_admitted")
        .add(probesAdmitted);
    // Deadline counters appear only when a budget was active, so
    // legacy runs export byte-identical metric sets.
    if (deadlineExpired)
        registry.counter("sharded.deadline.expired").add(deadlineExpired);
    if (deadlineFastFails)
        registry.counter("sharded.deadline.fast_fails")
            .add(deadlineFastFails);
    if (replicaSkips)
        registry.counter("sharded.deadline.replica_skips")
            .add(replicaSkips);
    registry.gauge("sharded.duration_seconds").set(duration);
    registry.gauge("sharded.availability").set(availability());
    registry.gauge("sharded.goodput_per_s").set(goodput());
    registry.gauge("sharded.wasted_seconds").set(wastedSeconds);
    registry.gauge("sharded.hedge_extra_seconds").set(hedgeExtraSeconds);
    registry.gauge("sharded.warmup_penalty_seconds")
        .set(warmupPenaltySeconds);
    registry.gauge("sharded.mean.slowest_shard_seconds")
        .set(slowestShardSeconds);
    registry.gauge("sharded.mean.network_seconds").set(networkSeconds);
    registry.gauge("sharded.mean.aggregator_seconds")
        .set(aggregatorSeconds);
    registry.gauge("sharded.network_bytes_per_inference")
        .set(networkBytes);
    obs::LatencyHistogram hist =
        registry.histogram("sharded.inference_latency_seconds");
    for (double s : latency.samples())
        hist.record(s);
    // Integrity counters appear only when an SDC controller ran, so
    // legacy runs export byte-identical metric sets.
    if (sdc.active) {
        registry.counter("integrity.injected.rows").add(sdc.injectedRows);
        registry.counter("integrity.injected.fc").add(sdc.injectedFc);
        registry.counter("integrity.detected.total").add(sdc.detected);
        registry.counter("integrity.detected.scrub")
            .add(sdc.detectedScrub);
        registry.counter("integrity.detected.inline")
            .add(sdc.detectedInline);
        registry.counter("integrity.detected.guard")
            .add(sdc.detectedGuard);
        registry.counter("integrity.detected.canary")
            .add(sdc.detectedCanary);
        registry.counter("integrity.cleared.rows").add(sdc.clearedRows);
        registry.counter("integrity.quarantined.rows")
            .add(sdc.quarantinedRows);
        registry.counter("integrity.repairs.completed").add(sdc.repairs);
        registry.counter("integrity.rehydrates").add(sdc.rehydrates);
        registry.counter("integrity.rows_rehydrated")
            .add(sdc.rowsRehydrated);
        registry.counter("integrity.responses.corrupted_served")
            .add(sdc.corruptedServed);
        registry.counter("integrity.responses.degraded")
            .add(sdc.degradedServed);
        registry.counter("integrity.canary.runs").add(sdc.canaryRuns);
        registry.counter("integrity.scrub.sweeps").add(sdc.scrubSweeps);
        registry.gauge("integrity.verify_seconds")
            .set(sdc.verifySeconds);
        registry.gauge("integrity.repair_seconds")
            .set(sdc.repairSeconds);
        registry.gauge("integrity.mean_quality")
            .set(completed > 0
                     ? sdc.qualitySum / static_cast<double>(completed)
                     : 1.0);
        obs::LatencyHistogram det =
            registry.histogram("integrity.detection_latency_seconds");
        for (double s : sdc.detectionLatency.samples())
            det.record(s);
    }
}

RunResult
ShardedInference::run(const RunOptions &options)
{
    const bool replicated = options.replicas.has_value();
    RP_ASSERT(options.measureIters > 0,
              "need at least one measured iteration");
    if (replicated) {
        std::string err = options.replicas->validate();
        RP_ASSERT(err.empty(), "%s", err.c_str());
        err = validateRetryPolicy(options.retry);
        RP_ASSERT(err.empty(), "%s", err.c_str());
        err = validateHedgePolicy(options.hedge, options.retry);
        RP_ASSERT(err.empty(), "%s", err.c_str());
        err = options.faults.validate();
        RP_ASSERT(err.empty(), "%s", err.c_str());
    } else {
        RP_ASSERT(options.retry.maxRetries >= 0,
                  "maxRetries cannot be negative");
    }
    std::string deadline_err =
        validateDeadlineSeconds(options.deadlineSeconds);
    RP_ASSERT(deadline_err.empty(), "%s", deadline_err.c_str());
    std::string sdc_err = options.sdc.validate();
    RP_ASSERT(sdc_err.empty(), "%s", sdc_err.c_str());

    if (options.backend) {
        for (std::unique_ptr<ModelTimer> &timer : shard_timers_)
            timer->setBackend(*options.backend);
        agg_timer_->setBackend(*options.backend);
    }

    FaultInjector injector(
        options.faults,
        numNodes() * (replicated ? options.replicas->replicas : 1));
    injector.setLog(options.faultLog);
    RunResult result;

    // The SDC controller engages when corruption events are injected
    // or any defense mechanism is on; otherwise no controller exists
    // and the loop below is byte-identical to a legacy run.
    std::unique_ptr<SdcController> sdc;
    if (options.faults.corruption.enabled() ||
        options.sdc.anyDefense()) {
        CorruptionTopology topo;
        topo.shards = numNodes();
        topo.replicas = replicated ? options.replicas->replicas : 1;
        topo.embDim = config_.emb.embDim;
        for (uint32_t s = 0; s < numNodes(); ++s) {
            std::vector<int64_t> rows;
            for (int64_t t = s; t < config_.emb.numTables;
                 t += static_cast<int64_t>(numNodes()))
                rows.push_back(config_.emb.rowsOf(t));
            topo.tableRows.push_back(std::move(rows));
        }
        // Aggregator FC state, modeled as one row per output neuron
        // carrying the stack's average per-neuron parameter load.
        int64_t neurons = 0;
        for (int64_t w : config_.bottomMlp)
            neurons += w;
        for (int64_t w : config_.topMlp)
            neurons += w;
        if (neurons > 0) {
            topo.fcRows = neurons;
            topo.fcRowBits = config_.fcParamCount() * 32 / neurons;
        }
        if (options.faults.corruption.enabled())
            injector.setCorruptionTopology(topo);
        SdcOptions sdc_opts = options.sdc;
        if (sdc_opts.quarantineQuality <= 0.0)
            sdc_opts.quarantineQuality = BrownoutOptions{}.qualityScore(
                BrownoutLevel::StaleEmbeddings);
        sdc = std::make_unique<SdcController>(
            sdc_opts, topo, &injector, options.faults.seed,
            options_.batch, config_.emb.lookupsPerTable);
    }

    // Warmup doubles as calibration of the auto hedge delay (p95 of
    // clean shard service times) and, with the replica layer, of the
    // post-recovery warm-up factor: the very first run of each shard
    // timer touches cold simulated caches, so cold-iteration /
    // steady-state SLS time *is* the embedding-cache refill cost a
    // revived replica pays.
    std::vector<double> cold;
    std::vector<double> calib;
    int warmup = std::max(options.warmupIters, replicated ? 2 : 1);
    for (int i = 0; i < warmup; ++i) {
        for (auto &timer : shard_timers_) {
            double s = timer->run().secondsByKind(OpKind::SLS);
            (replicated && i == 0 ? cold : calib).push_back(s);
        }
        agg_timer_->run();
    }
    double hedge_delay = options.hedge.delaySeconds > 0.0
        ? options.hedge.delaySeconds : percentile(calib, 95.0);
    // A fresh attempt's p50, from the same calibration: the fail-fast
    // floor below which a deadline budget cannot buy a retry.
    double fresh_p50 = percentile(calib, 50.0);

    std::vector<ReplicaSet> sets;
    if (replicated) {
        double warm_factor = options.replicas->warmupFactor;
        if (warm_factor <= 0.0) {
            double cold_mean = 0.0;
            for (double s : cold)
                cold_mean += s;
            cold_mean /= static_cast<double>(cold.size());
            double steady = percentile(calib, 50.0);
            warm_factor = steady > 0.0
                ? std::clamp(cold_mean / steady, 1.0, 100.0) : 1.0;
        }
        result.warmupFactorUsed = warm_factor;
        sets.reserve(numNodes());
        for (uint32_t s = 0; s < numNodes(); ++s)
            sets.emplace_back(s, *options.replicas, warm_factor);
    }

    if (sdc)
        sdc->calibrate(fresh_p50, machine_.dram.streamGBps());

    obs::Tracer &tracer = obs::Tracer::global();
    if (tracer.enabled()) {
        tracer.nameLane(0, "aggregator");
        for (uint32_t s = 0; s < numNodes(); ++s)
            tracer.nameLane(1 + s, strprintf("shard %u", s));
        if (sdc)
            sdc->setTracer(&tracer,
                           static_cast<int>(numNodes()) + 1);
    }

    // Measurement starts here: drop warm-up/calibration telemetry and
    // anchor the time-series cadence at virtual t = 0.
    obs::HwTelemetry &telem = obs::HwTelemetry::global();
    if (telem.enabled())
        telem.reset();
    obs::TimeSeriesSampler &sampler = obs::TimeSeriesSampler::global();
    if (sampler.enabled())
        sampler.reset();
    obs::RequestLogger &rlog = obs::RequestLogger::global();
    const bool rlog_on = rlog.enabled();
    if (rlog_on)
        rlog.reset();

    double now = 0.0;
    double sum_slowest = 0.0;
    double sum_agg = 0.0;
    for (int i = 0; i < options.measureIters; ++i) {
        // Advance the corruption/scrub/repair/canary machinery to the
        // inference's issue time; canary executions tax the clock.
        if (sdc)
            now += sdc->beginInference(now);
        double issue = now;
        double slowest = 0.0;
        double elapsed_max = 0.0;
        bool ok = true;
        bool cancelled = false;
        // Request-log accumulators: the critical (slowest-ok) shard's
        // breakdown defines the latency phases; retry/hedge/breaker
        // counts sum over every shard so they reconcile against the
        // run's exported counters.
        ShardOutcome crit;
        int32_t crit_shard = -1;
        double crit_base_clean = 0.0;
        double crit_verify = 0.0;
        double min_clean = 0.0;
        uint64_t rl_retries = 0, rl_hedges = 0, rl_hedge_wins = 0;
        uint64_t rl_breaker = 0;
        bool rl_clamped = false;
        double rl_offload = 0.0;
        // Each inference carries its own budget (anchored at issue
        // time) and cancellation token; once any shard gives up on the
        // deadline, the token stops the remaining fan-out.
        CancelToken inference_token;
        DeadlineCtx ctx{Deadline{now, options.deadlineSeconds},
                        fresh_p50, &inference_token, options.cancel};
        for (uint32_t s = 0; s < numNodes(); ++s) {
            if (ctx.cancelled()) {
                // Cooperative cancellation mid-fan-out: the remaining
                // shards are never queried.
                cancelled = true;
                break;
            }
            ModelTiming shard_timing = shard_timers_[s]->run();
            double base = shard_timing.secondsByKind(OpKind::SLS);
            // The fault-free shard time, before the scrub slowdown:
            // the request log charges the difference to the Scrub
            // phase instead of folding it into Service.
            double base_clean = base;
            if (sdc) {
                // Checksum re-reads of the background scrubber steal
                // table bandwidth from every gather.
                base *= sdc->serviceSlowdown();
            }
            ShardOutcome out = replicated
                ? resolveReplicated(injector, sets[s], options.retry,
                                    options.hedge, hedge_delay, s, base,
                                    now, options.chaos, ctx, sdc.get(),
                                    &result)
                : resolveShard(injector, options.retry, options.hedge,
                               hedge_delay, s, base, now, ctx,
                               sdc.get(), &result);
            double verify = 0.0;
            if (out.ok && sdc) {
                // Model the rows this batch touched on the serving
                // replica; inline sampled verification adds its read
                // cost to the shard's service time.
                verify = sdc->onShardLookup(s, out.replica, now);
                out.elapsed += verify;
            }
            if (tracer.enabled()) {
                tracer.span("shard", strprintf("sls s%u", s), now,
                            now + out.elapsed, 1 + s,
                            {{"ok", out.ok ? "true" : "false"},
                             {"base_us",
                              strprintf("%.3f", base * 1e6)}});
            }
            if (rlog_on) {
                rl_retries += out.retries;
                rl_hedges += out.hedges;
                rl_hedge_wins += out.hedgeWins;
                rl_breaker += out.breakerRejects;
                rl_clamped = rl_clamped || out.deadlineClamped;
                for (const OpTiming &op : shard_timing.ops)
                    rl_offload +=
                        static_cast<double>(op.transferBytes);
                if (out.ok) {
                    if (crit_shard < 0 || base_clean < min_clean)
                        min_clean = base_clean;
                    if (crit_shard < 0 || out.elapsed > crit.elapsed) {
                        crit = out;
                        crit_shard = static_cast<int32_t>(s);
                        crit_base_clean = base_clean;
                        crit_verify = verify;
                    }
                }
            }
            elapsed_max = std::max(elapsed_max, out.elapsed);
            if (out.cancelled) {
                cancelled = true;
                break;
            }
            if (out.ok)
                slowest = std::max(slowest, out.elapsed);
            else
                ok = false;
        }
        // Shared tag assembly for whichever record this inference
        // emits (served, cancelled, or failed).
        auto base_record = [&](obs::RequestOutcome outcome,
                               double latency) {
            obs::RequestRecord rec;
            rec.id = static_cast<uint64_t>(i);
            rec.arrival = issue;
            rec.start = issue;
            rec.finish = now;
            rec.latency = latency;
            rec.outcome = outcome;
            rec.retries = static_cast<uint16_t>(
                std::min<uint64_t>(rl_retries, UINT16_MAX));
            rec.hedges = static_cast<uint16_t>(
                std::min<uint64_t>(rl_hedges, UINT16_MAX));
            rec.hedgeWins = static_cast<uint16_t>(
                std::min<uint64_t>(rl_hedge_wins, UINT16_MAX));
            rec.breakerRejects = static_cast<uint32_t>(
                std::min<uint64_t>(rl_breaker, UINT32_MAX));
            rec.deadlineClamped = rl_clamped;
            rec.hedgeWon = crit.hedgeWon;
            rec.criticalShard = crit_shard;
            rec.replica = (replicated && crit_shard >= 0)
                ? static_cast<int32_t>(crit.replica) : -1;
            rec.healthEwma = static_cast<float>(crit.healthEwma);
            rec.admissionEstimate = static_cast<float>(fresh_p50);
            rec.batchItems = static_cast<uint32_t>(options_.batch);
            rec.offloadBytes = rl_offload;
            return rec;
        };
        if (cancelled) {
            // Deadline-shed: the aggregator never runs, the partial
            // shard work is wasted, and virtual time advances only by
            // what the abandoned attempt actually consumed (capped at
            // the budget — the cancellation point).
            if (sdc)
                sdc->dropInference();
            ++result.deadlineExpired;
            double consumed = ctx.deadline.enabled()
                ? std::min(elapsed_max, ctx.deadline.budgetSeconds)
                : elapsed_max;
            result.wastedSeconds += elapsed_max;
            if (tracer.enabled()) {
                tracer.instant("deadline", "cancelled", now + consumed,
                               0);
            }
            now += consumed;
            sampler.observeItem(now, consumed, true);
            if (rlog_on) {
                obs::RequestRecord rec =
                    base_record(obs::RequestOutcome::Cancelled,
                                consumed);
                rec.slaViolated = true;
                // The abandoned fan-out's time is all spent waiting on
                // shards; blame it on the retry lane.
                rec.phase[static_cast<size_t>(
                    obs::RequestPhase::Retry)] = consumed;
                rlog.record(rec);
            }
            if (telem.enabled())
                telem.emitCounters(tracer, now, 0);
            sampler.tick(now);
            continue;
        }
        ModelTiming agg = agg_timer_->run();
        double agg_seconds =
            agg.totalSeconds() - agg.secondsByKind(OpKind::SLS);
        double network = networkSeconds(nullptr);

        if (ok) {
            double total = slowest + network + agg_seconds;
            double guard_extra = 0.0;
            if (sdc) {
                // The aggregation boundary: output guards and canary
                // bookkeeping decide whether this response escapes
                // corrupted, serves degraded, or pays guard time.
                SdcController::Boundary boundary =
                    sdc->endInference(now + total);
                guard_extra = boundary.extraSeconds;
                total += boundary.extraSeconds;
            }
            if (tracer.enabled()) {
                tracer.span("shard", "network", now + slowest,
                            now + slowest + network, 0);
                tracer.span("shard", "aggregate",
                            now + slowest + network, now + total, 0);
            }
            result.latency.add(total);
            ++result.completed;
            sum_slowest += slowest;
            sum_agg += agg_seconds;
            now += total;
            sampler.observeItem(now, total, false);
            if (rlog_on) {
                obs::RequestRecord rec =
                    base_record(obs::RequestOutcome::Served, total);
                // Decompose the critical shard's elapsed time:
                //  - Service: the fault-free minimum shard time (the
                //    floor every fan-out pays);
                //  - ShardStraggler: everything the slowest shard adds
                //    beyond that floor (imbalance + chaos slowdown);
                //  - Scrub: scrubber slowdown + inline verification +
                //    the aggregation boundary's guard time;
                //  - Retry/Hedge/Warmup: the critical shard's waits.
                auto ph = [&rec](obs::RequestPhase p) -> double & {
                    return rec.phase[static_cast<size_t>(p)];
                };
                ph(obs::RequestPhase::Service) = min_clean;
                ph(obs::RequestPhase::ShardStraggler) =
                    (crit_base_clean - min_clean) +
                    crit.stragglerSeconds;
                ph(obs::RequestPhase::Retry) = crit.retryWaitSeconds;
                ph(obs::RequestPhase::Hedge) = crit.hedgeWaitSeconds;
                ph(obs::RequestPhase::Warmup) = crit.warmupSeconds;
                ph(obs::RequestPhase::Scrub) =
                    (crit.serviceSeconds - crit_base_clean) +
                    crit_verify + guard_extra;
                ph(obs::RequestPhase::Network) = network;
                ph(obs::RequestPhase::Aggregate) = agg_seconds;
                rlog.record(rec);
            }
        } else {
            // The aggregator abandons the inference once the slowest
            // shard exhausts its retries; no result is produced.
            if (sdc)
                sdc->dropInference();
            ++result.failed;
            result.wastedSeconds += agg_seconds;
            if (tracer.enabled()) {
                tracer.instant("shard", "inference_failed",
                               now + elapsed_max, 0);
            }
            now += elapsed_max + network;
            sampler.observeItem(now, elapsed_max + network, true);
            if (rlog_on) {
                obs::RequestRecord rec =
                    base_record(obs::RequestOutcome::Failed,
                                elapsed_max + network);
                rec.slaViolated = true;
                // Retries were exhausted: the whole shard wait is the
                // retry lane's fault; the network hop still happened.
                rec.phase[static_cast<size_t>(
                    obs::RequestPhase::Retry)] = elapsed_max;
                rec.phase[static_cast<size_t>(
                    obs::RequestPhase::Network)] = network;
                rlog.record(rec);
            }
        }
        // `now` only moves forward, so the counter tracks carry
        // monotone virtual timestamps.
        if (telem.enabled())
            telem.emitCounters(tracer, now, 0);
        sampler.tick(now);
    }
    result.duration = now;

    if (sdc) {
        // Final scrub period + repair-queue drain: every resident
        // corruption resolves within its detection bound.
        sdc->finish(now);
        result.sdc = sdc->stats();
    }

    for (const ReplicaSet &set : sets) {
        result.breakerOpens += set.breakerOpens();
        result.breakerCloses += set.breakerCloses();
        result.probesAdmitted += set.probesAdmitted();
    }

    if (result.completed > 0) {
        result.slowestShardSeconds =
            sum_slowest / static_cast<double>(result.completed);
        result.aggregatorSeconds =
            sum_agg / static_cast<double>(result.completed);
    }
    // Pooled vectors: one embDim-vector per (sample, table) crosses the
    // network; with one node everything is local.
    result.networkSeconds = networkSeconds(&result.networkBytes);
    result.totalSeconds = result.slowestShardSeconds +
        result.networkSeconds + result.aggregatorSeconds;
    return result;
}

double
ShardedInference::shardNetworkBytes(uint32_t shard) const
{
    if (numNodes() <= 1)
        return 0.0;
    return static_cast<double>(options_.batch) *
        static_cast<double>(shard_tables_.at(shard)) *
        static_cast<double>(config_.emb.embDim) * 4.0;
}

double
ShardedInference::networkSeconds(double *bytes_out) const
{
    double bytes = 0.0;
    double seconds = 0.0;
    if (numNodes() > 1) {
        bytes = static_cast<double>(options_.batch) *
            static_cast<double>(config_.emb.numTables) *
            static_cast<double>(config_.emb.embDim) * 4.0;
        seconds = network_.rttUs * 1e-6 +
            bytes / (network_.bandwidthGBps * 1e9);
    }
    if (bytes_out)
        *bytes_out = bytes;
    return seconds;
}

ShardedInference::ShardOutcome
ShardedInference::resolveShard(FaultInjector &injector,
                               const RetryPolicy &retry,
                               const HedgePolicy &hedge,
                               double hedge_delay, uint32_t shard,
                               double base_seconds, double now,
                               const DeadlineCtx &ctx,
                               const SdcController *sdc,
                               ResilientShardedResult *result)
{
    const Deadline &dl = ctx.deadline;
    double waited = 0.0;
    int max_attempts = retry.maxRetries + 1;
    // Request-log breakdown carried across attempts; every return
    // site stamps it onto the outcome without touching the elapsed
    // arithmetic.
    ShardOutcome out;
    auto abandoned = [&](bool was_cancelled) {
        out.elapsed = waited;
        out.ok = false;
        out.cancelled = was_cancelled;
        out.retryWaitSeconds = waited;
        return out;
    };
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        double t_start = now + waited;
        if (ctx.cancelled() || dl.expired(t_start)) {
            ctx.cancel();
            return abandoned(true);
        }
        double remaining = dl.remaining(t_start);
        if (dl.enabled() && remaining < ctx.freshP50) {
            // Fail fast: not even a median-speed fresh attempt fits
            // in what is left of the budget, so don't issue one.
            ++result->deadlineFastFails;
            ctx.cancel();
            return abandoned(true);
        }
        // Every attempt's effective timeout is the policy timeout
        // clamped to the remaining budget (+inf when neither bounds).
        double timeout = dl.clampTimeout(retry.timeoutSeconds, t_start);
        if (dl.enabled() &&
            (retry.timeoutSeconds <= 0.0 ||
             timeout < retry.timeoutSeconds))
            out.deadlineClamped = true;
        bool hedge_fits = hedge.enabled && hedge_delay < remaining;
        // A replica mid-rehydrate is out of rotation: the single-copy
        // path sees it exactly like a transient down window.
        bool drained =
            sdc != nullptr && sdc->replicaDrained(shard, 0, t_start);
        if (drained || !injector.shardUp(shard, t_start)) {
            ++result->shardDownEncounters;
            if (hedge_fits) {
                // The hedge goes to a replica node, so it rescues the
                // request even while the primary shard is down.
                double hedged = base_seconds *
                    injector.serviceMultiplier(t_start + hedge_delay);
                ++result->hedgesIssued;
                ++result->hedgeWins;
                result->hedgeExtraSeconds += hedged;
                result->hedgeExtraBytes += shardNetworkBytes(shard);
                out.elapsed = waited + hedge_delay + hedged;
                out.ok = true;
                out.retryWaitSeconds = waited;
                out.hedgeWaitSeconds = hedge_delay;
                out.serviceSeconds = base_seconds;
                out.stragglerSeconds = hedged - base_seconds;
                ++out.hedges;
                ++out.hedgeWins;
                out.hedgeWon = true;
                return out;
            }
            result->wastedSeconds += retry.failFastSeconds;
            waited += retry.failFastSeconds;
        } else {
            double service = base_seconds *
                injector.serviceMultiplier(t_start);
            bool hedge_won = false;
            if (hedge_fits && service > hedge_delay) {
                double hedged = hedge_delay + base_seconds *
                    injector.serviceMultiplier(t_start + hedge_delay);
                ++result->hedgesIssued;
                result->hedgeExtraSeconds += hedged - hedge_delay;
                result->hedgeExtraBytes += shardNetworkBytes(shard);
                ++out.hedges;
                if (hedged < service) {
                    ++result->hedgeWins;
                    ++out.hedgeWins;
                    hedge_won = true;
                    service = hedged;
                }
            }
            if (service > timeout) {
                ++result->timeouts;
                result->wastedSeconds += timeout;
                waited += timeout;
            } else {
                out.elapsed = waited + service;
                out.ok = true;
                out.retryWaitSeconds = waited;
                out.serviceSeconds = base_seconds;
                if (hedge_won) {
                    out.hedgeWaitSeconds = hedge_delay;
                    out.stragglerSeconds =
                        service - hedge_delay - base_seconds;
                    out.hedgeWon = true;
                } else {
                    out.stragglerSeconds = service - base_seconds;
                }
                return out;
            }
        }
        if (attempt + 1 < max_attempts) {
            ++result->retries;
            ++out.retries;
            waited += retry.backoffBefore(attempt);
        }
    }
    return abandoned(false);
}

ShardedInference::ShardOutcome
ShardedInference::resolveReplicated(FaultInjector &injector,
                                    ReplicaSet &set,
                                    const RetryPolicy &retry,
                                    const HedgePolicy &hedge,
                                    double hedge_delay, uint32_t shard,
                                    double base_seconds, double now,
                                    const ChaosSchedule *chaos,
                                    const DeadlineCtx &ctx,
                                    const SdcController *sdc,
                                    ReplicatedShardedResult *result)
{
    const Deadline &dl = ctx.deadline;
    // Replica r of shard s runs failure process s*R + r; scripted chaos
    // windows override the renewal process, and a replica drained for
    // SDC rehydration counts as down so requests fail over. Every
    // query also tells the ReplicaSet what it saw, so down -> up edges
    // start the warm-up.
    auto replica_up = [&](uint32_t replica, double t) {
        bool up = injector.shardUp(shard * set.size() + replica, t);
        if (up && sdc && sdc->replicaDrained(shard, replica, t))
            up = false;
        if (up && chaos && chaos->forcedDown(shard, replica, t))
            up = false;
        return set.observeUp(replica, up, t);
    };
    auto multiplier = [&](double t) {
        double m = injector.serviceMultiplier(t);
        return chaos ? m * chaos->serviceFactor(t) : m;
    };

    double waited = 0.0;
    int prev_error_replica = -1;
    int max_attempts = retry.maxRetries + 1;
    // Request-log breakdown carried across attempts; every return
    // site stamps it onto the outcome without touching the elapsed
    // arithmetic.
    ShardOutcome out;
    auto abandoned = [&](bool was_cancelled) {
        out.elapsed = waited;
        out.ok = false;
        out.cancelled = was_cancelled;
        out.retryWaitSeconds = waited;
        return out;
    };
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        double t_start = now + waited;
        if (ctx.cancelled() || dl.expired(t_start)) {
            ctx.cancel();
            return abandoned(true);
        }
        double remaining = dl.remaining(t_start);
        if (dl.enabled() && remaining < ctx.freshP50) {
            ++result->deadlineFastFails;
            ctx.cancel();
            return abandoned(true);
        }
        double timeout = dl.clampTimeout(retry.timeoutSeconds, t_start);
        if (dl.enabled() &&
            (retry.timeoutSeconds <= 0.0 ||
             timeout < retry.timeoutSeconds))
            out.deadlineClamped = true;
        bool hedge_fits = hedge.enabled && hedge_delay < remaining;
        ReplicaSet::Pick pick = set.route(t_start);
        if (dl.enabled() && pick.replica >= 0) {
            // Skip replicas whose learned EWMA latency already exceeds
            // the remaining budget: prefer the router's alternate when
            // it fits, otherwise abandon rather than send a doomed
            // request.
            const HealthTracker &primary_health =
                set.health(static_cast<uint32_t>(pick.replica));
            if (primary_health.successes() > 0 &&
                primary_health.ewmaSeconds() > remaining) {
                bool alternate_fits = false;
                if (pick.alternate >= 0) {
                    const HealthTracker &alt_health = set.health(
                        static_cast<uint32_t>(pick.alternate));
                    alternate_fits = alt_health.successes() == 0 ||
                        alt_health.ewmaSeconds() <= remaining;
                }
                ++result->replicaSkips;
                if (!alternate_fits) {
                    ctx.cancel();
                    return abandoned(true);
                }
                std::swap(pick.replica, pick.alternate);
            }
        }
        if (pick.replica < 0) {
            // Every breaker rejected: nothing to send to. Pay the
            // detection latency and let the backoff ride until a
            // breaker half-opens.
            ++result->breakerRejects;
            ++out.breakerRejects;
            result->wastedSeconds += retry.failFastSeconds;
            waited += retry.failFastSeconds;
        } else {
            auto primary = static_cast<uint32_t>(pick.replica);
            if (!replica_up(primary, t_start)) {
                ++result->shardDownEncounters;
                set.recordError(primary, t_start);
                prev_error_replica = pick.replica;
                // A down primary is rescued by hedging to the router's
                // second-best replica — if one is admitted and alive.
                if (hedge_fits && pick.alternate >= 0) {
                    auto alt = static_cast<uint32_t>(pick.alternate);
                    double t_hedge = t_start + hedge_delay;
                    if (replica_up(alt, t_hedge)) {
                        double warm = set.warmupMultiplier(alt, t_hedge);
                        double hedged =
                            base_seconds * multiplier(t_hedge) * warm;
                        ++result->hedgesIssued;
                        ++result->hedgeWins;
                        ++result->failovers;
                        result->hedgeExtraSeconds += hedged;
                        result->hedgeExtraBytes +=
                            shardNetworkBytes(shard);
                        result->warmupPenaltySeconds +=
                            hedged - hedged / warm;
                        set.recordSuccess(alt, hedged, t_hedge);
                        out.elapsed = waited + hedge_delay + hedged;
                        out.ok = true;
                        out.replica = alt;
                        out.retryWaitSeconds = waited;
                        out.hedgeWaitSeconds = hedge_delay;
                        out.serviceSeconds = base_seconds;
                        out.warmupSeconds = hedged - hedged / warm;
                        out.stragglerSeconds =
                            hedged / warm - base_seconds;
                        ++out.hedges;
                        ++out.hedgeWins;
                        out.hedgeWon = true;
                        out.healthEwma =
                            set.health(alt).ewmaSeconds();
                        return out;
                    }
                    ++result->shardDownEncounters;
                    set.recordError(alt, t_hedge);
                }
                result->wastedSeconds += retry.failFastSeconds;
                waited += retry.failFastSeconds;
            } else {
                double warm = set.warmupMultiplier(primary, t_start);
                double service =
                    base_seconds * multiplier(t_start) * warm;
                double primary_service = service;
                uint32_t winner = primary;
                double win_warm = warm;
                double win_body = service;
                if (hedge_fits && service > hedge_delay &&
                    pick.alternate >= 0) {
                    auto alt = static_cast<uint32_t>(pick.alternate);
                    double t_hedge = t_start + hedge_delay;
                    if (replica_up(alt, t_hedge)) {
                        double warm_alt =
                            set.warmupMultiplier(alt, t_hedge);
                        double alt_service =
                            base_seconds * multiplier(t_hedge) * warm_alt;
                        double hedged = hedge_delay + alt_service;
                        ++result->hedgesIssued;
                        result->hedgeExtraSeconds += alt_service;
                        result->hedgeExtraBytes +=
                            shardNetworkBytes(shard);
                        ++out.hedges;
                        set.recordSuccess(alt, alt_service, t_hedge);
                        if (hedged < service) {
                            ++result->hedgeWins;
                            ++out.hedgeWins;
                            result->warmupPenaltySeconds +=
                                alt_service - alt_service / warm_alt;
                            winner = alt;
                            service = hedged;
                            win_warm = warm_alt;
                            win_body = alt_service;
                        }
                    } else {
                        ++result->shardDownEncounters;
                        set.recordError(alt, t_hedge);
                    }
                }
                if (service > timeout) {
                    ++result->timeouts;
                    set.recordError(primary, t_start + timeout);
                    prev_error_replica = static_cast<int>(primary);
                    result->wastedSeconds += timeout;
                    waited += timeout;
                } else {
                    // The primary did answer (even when the hedge beat
                    // it), so its EWMA learns its own latency.
                    set.recordSuccess(primary, primary_service, t_start);
                    if (winner == primary) {
                        result->warmupPenaltySeconds +=
                            primary_service - primary_service / warm;
                    }
                    if (prev_error_replica >= 0 &&
                        winner !=
                            static_cast<uint32_t>(prev_error_replica))
                        ++result->failovers;
                    out.elapsed = waited + service;
                    out.ok = true;
                    out.replica = winner;
                    out.retryWaitSeconds = waited;
                    out.serviceSeconds = base_seconds;
                    // win_body = base * mult * warm of the winning
                    // attempt; peel warm-up off the top, then the
                    // fault excess, leaving the clean base.
                    out.warmupSeconds = win_body - win_body / win_warm;
                    out.stragglerSeconds =
                        win_body / win_warm - base_seconds;
                    if (winner != primary) {
                        out.hedgeWaitSeconds = hedge_delay;
                        out.hedgeWon = true;
                    }
                    out.healthEwma =
                        set.health(winner).ewmaSeconds();
                    return out;
                }
            }
        }
        if (attempt + 1 < max_attempts) {
            ++result->retries;
            ++out.retries;
            waited += retry.backoffBefore(attempt);
        }
    }
    return abandoned(false);
}

} // namespace recperf
