/**
 * @file
 * Discrete-event serving simulation: batching, co-location, and SLA.
 *
 * Section III argues that single-model latency is the wrong data-center
 * metric; what matters is latency-bounded throughput — items ranked per
 * second while meeting the SLA. This module provides the serving layer
 * that turns the per-inference timing model into that metric:
 *
 *  - items (user-post pairs) arrive as a Poisson process;
 *  - a batching queue groups waiting items up to a maximum batch;
 *  - N co-located worker instances (sharing the socket LLC via the
 *    simulated hierarchy, as in ColocationSim) serve batches;
 *  - per-item latency = queueing + service; a lognormal jitter models
 *    the OS/scheduler noise of the production environment (§VI-A).
 */

#ifndef RECPERF_SERVING_SERVER_HH
#define RECPERF_SERVING_SERVER_HH

#include <memory>
#include <vector>

#include "core/cancellation.hh"
#include "core/stats.hh"
#include "obs/metrics.hh"
#include "resilience/fault_injector.hh"
#include "resilience/policies.hh"
#include "sched/brownout.hh"
#include "timing/model_timer.hh"

namespace recperf {

/** Serving-layer configuration. */
struct ServerOptions
{
    /** Co-located model instances (worker cores) on the socket. */
    uint32_t numWorkers = 1;

    /** Largest batch the dynamic batcher will form. */
    int64_t maxBatch = 32;

    /** Latency SLA for an item (arrival to completion). */
    double slaSeconds = 0.450;

    /** Lognormal sigma applied to every service time. */
    double jitterSigma = 0.08;

    uint64_t seed = 1234;

    /** SLA-aware load shedding at the batching queue. */
    AdmissionOptions admission;

    /** Degraded-service response to deep backlogs. */
    DegradeOptions degrade;

    /**
     * Replicas backing this serving tier in the cluster view. When
     * some are unhealthy, the survivors absorb the dead replicas'
     * traffic, so the overload responses arm earlier: the degraded-
     * mode backlog threshold and the admission wait budget both scale
     * by healthy/total.
     */
    uint32_t clusterReplicas = 1;

    /** Currently healthy replicas; 0 means all of clusterReplicas. */
    uint32_t healthyReplicas = 0;

    /** Service-time fault injection (stragglers, load spikes). */
    FaultOptions faults;

    /**
     * Per-item end-to-end deadline budget (arrival to completion);
     * 0 disables. With a deadline, items are shed at admission when
     * the budget cannot cover the p50 service estimate, shed from the
     * queue once the budget expires while waiting, and cancelled
     * mid-batch when the batch finishes past their deadline — counted
     * as deadline-shed rather than silently completed late.
     */
    double deadlineSeconds = 0.0;

    /** SLO-burn-driven graceful-degradation ladder. */
    BrownoutOptions brownout;
};

/** Outcome of a serving run. */
struct ServingStats
{
    /** Per-item end-to-end latencies (seconds). */
    LatencySample itemLatency;

    /** Per-batch service times (seconds). */
    LatencySample serviceTime;

    /** Per-batch FC-operator times (for Fig 11-style views). */
    LatencySample fcTime;

    /** Items that met the SLA. */
    uint64_t slaMet = 0;

    /** Items that missed the SLA (would be preemptively dropped). */
    uint64_t slaMissed = 0;

    /** Items shed at admission (predicted wait beyond the budget). */
    uint64_t shedItems = 0;

    /** Low-priority items dropped while in degraded mode. */
    uint64_t droppedLowPriority = 0;

    /** Batches served with the degraded batch cap. */
    uint64_t degradedBatches = 0;

    /** Items rejected at admission: deadline below the p50 service
     *  estimate, so serving them was hopeless from the start. */
    uint64_t shedAdmissionDeadline = 0;

    /** Items whose deadline expired while they waited in the queue. */
    uint64_t deadlineShedQueue = 0;

    /** Items cancelled mid-batch: the batch finished past their
     *  deadline, so the answer was abandoned instead of delivered
     *  late. */
    uint64_t deadlineCancelled = 0;

    /** Served items that met their deadline (defined only when the
     *  deadline is enabled; equals completedItems() then, because a
     *  late item is cancelled, never served). */
    uint64_t deadlineMet = 0;

    /** Brownout-ladder level changes during the run. */
    uint64_t brownoutTransitions = 0;

    /** Served items per ladder level (index = BrownoutLevel). */
    uint64_t brownoutItems[kBrownoutLevels] = {0, 0, 0, 0};

    /** Sum of per-item modeled quality over served items. */
    double qualitySum = 0.0;

    /** Ladder level at the end of the run. */
    uint32_t finalBrownoutLevel = 0;

    /** Wall-clock span of the simulation (seconds). */
    double duration = 0.0;

    /** Items that were actually served (met + missed the SLA). */
    uint64_t completedItems() const { return slaMet + slaMissed; }

    /** Items offered, whether served, shed, dropped, or cancelled. */
    uint64_t offeredItems() const
    {
        return completedItems() + shedItems + droppedLowPriority +
            shedAdmissionDeadline + deadlineShedQueue +
            deadlineCancelled;
    }

    /** Mean modeled quality of served items (1.0 = full fidelity). */
    double qualityScore() const;

    /** Served items that met their deadline, per second. */
    double deadlineGoodput() const;

    /** Items completing within SLA per second. All accessors are safe
     *  on empty runs (they return 0 rather than dividing by zero). */
    double goodThroughput() const;

    /** All completed items per second. */
    double totalThroughput() const;

    /** Fraction of served items meeting the SLA. */
    double slaFraction() const;

    /** Fraction of offered items that were served at all. */
    double servedFraction() const;

    /**
     * Export this run's counters and latency distributions into
     * @p registry under the `serving.` prefix. Called once at the end
     * of a run (not incrementally) so repeated runs never double-count
     * stale shards; pair with MetricsRegistry::reset() between runs.
     */
    void exportTo(obs::MetricsRegistry &registry) const;

    /**
     * The one end-of-run summary formatter: renders the `serving.`
     * metrics of @p snap as the human-readable table every CLI command
     * prints. Non-serving metrics in the snapshot are ignored.
     */
    static std::string summarize(const obs::MetricsSnapshot &snap);
};

/**
 * A single-socket inference server running one model type on N
 * co-located workers with dynamic batching.
 */
class Server
{
  public:
    Server(const MachineSpec &machine, const ModelConfig &config,
           const TimerOptions &timer_options, const ServerOptions &options);

    /**
     * Open-loop run: Poisson item arrivals at @p items_per_second for
     * @p num_items items.
     */
    ServingStats runOpenLoop(double items_per_second, uint64_t num_items);

    /**
     * Install a cooperative cancellation token checked at batch
     * granularity inside runOpenLoop: once it fires, the run stops
     * after the in-flight batch and the not-yet-offered arrivals are
     * simply never admitted, so the returned accounting stays exact
     * (served + shed + cancelled == offered). Null detaches.
     */
    void setCancelToken(const CancelToken *cancel) { cancel_ = cancel; }

    /**
     * Closed-loop run: workers always have a full batch ready
     * (saturation throughput measurement).
     */
    ServingStats runClosedLoop(uint64_t batches_per_worker);

    uint32_t numWorkers() const;

  private:
    double serviceBatch(size_t worker, int64_t batch, double now,
                        double *fc_seconds,
                        BrownoutLevel level = BrownoutLevel::Full,
                        double *fault_mult = nullptr);

    /** healthy/total replica fraction in (0, 1]; 1 when fully healthy. */
    double healthyFraction() const;

    MachineSpec machine_;
    ServerOptions options_;
    std::unique_ptr<CacheHierarchy> hier_;
    std::vector<std::unique_ptr<ModelTimer>> workers_;
    Rng jitter_rng_;
    Rng arrival_rng_;
    Rng priority_rng_;
    /** Present when the failure model is active. */
    std::unique_ptr<FaultInjector> injector_;
    /** External cooperative cancellation; not owned. */
    const CancelToken *cancel_ = nullptr;
    /** Warm-up-calibrated full-batch service estimate (seconds). */
    double warmServiceEstimate_ = 0.0;
};

} // namespace recperf

#endif // RECPERF_SERVING_SERVER_HH
