/**
 * @file
 * A minimal dense fp32 tensor for functional model execution.
 *
 * All production and baseline models in this project (RMC1/2/3, NCF)
 * store activations and parameters as fp32, matching the paper's "all
 * data and model parameters are stored in fp32 format" (Section IV).
 * The tensor is row-major and owns cache-line-aligned storage.
 */

#ifndef RECPERF_TENSOR_TENSOR_HH
#define RECPERF_TENSOR_TENSOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/aligned.hh"

namespace recperf {

class Rng;

/** Shape of a tensor; empty shape denotes a scalar. */
using Shape = std::vector<int64_t>;

/** Number of elements a shape describes. */
int64_t numElements(const Shape &shape);

/** Human-readable "[a, b, c]" rendering. */
std::string shapeToString(const Shape &shape);

/**
 * Dense row-major fp32 tensor with owned, 64-byte-aligned storage.
 *
 * Supports ranks 0 through 4, which covers everything the
 * recommendation, NCF, and proxy models need.
 */
class Tensor
{
  public:
    /** An empty (rank-0, zero-element placeholder) tensor. */
    Tensor() = default;

    /** Allocate a zero-initialized tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Allocate and fill with a constant. */
    Tensor(Shape shape, float fill_value);

    const Shape &shape() const { return shape_; }
    int64_t dim(size_t i) const;
    size_t rank() const { return shape_.size(); }
    int64_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    float *data() { return buf_.data(); }
    const float *data() const { return buf_.data(); }

    /** Flat element access. */
    float &at(int64_t i);
    float at(int64_t i) const;

    /** 2-D element access (requires rank 2). */
    float &at(int64_t r, int64_t c);
    float at(int64_t r, int64_t c) const;

    /** Set every element to @p value. */
    void fill(float value);

    /** Fill with uniform values in [lo, hi). */
    void fillUniform(Rng &rng, float lo, float hi);

    /** Fill with N(0, stddev) values (e.g., for weight init). */
    void fillGaussian(Rng &rng, float stddev);

    /** True when shapes match and elements differ by at most @p tol. */
    bool allClose(const Tensor &other, float tol = 1e-5f) const;

    /** Reinterpret as a new shape with the same element count. */
    Tensor reshaped(Shape new_shape) const;

  private:
    Shape shape_;
    int64_t size_ = 0;
    AlignedBuffer<float> buf_;
};

} // namespace recperf

#endif // RECPERF_TENSOR_TENSOR_HH
