#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/logging.hh"
#include "core/rng.hh"

namespace recperf {

int64_t
numElements(const Shape &shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        RP_ASSERT(d >= 0, "negative dimension %lld", static_cast<long long>(d));
        n *= d;
    }
    return n;
}

std::string
shapeToString(const Shape &shape)
{
    std::string out = "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i)
            out += ", ";
        out += strprintf("%lld", static_cast<long long>(shape[i]));
    }
    return out + "]";
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape))
{
    RP_ASSERT(shape_.size() <= 4, "tensor rank %zu exceeds 4", shape_.size());
    size_ = numElements(shape_);
    buf_.resize(static_cast<size_t>(size_));
    if (size_ > 0)
        std::memset(buf_.data(), 0, static_cast<size_t>(size_) * sizeof(float));
}

Tensor::Tensor(Shape shape, float fill_value) : Tensor(std::move(shape))
{
    fill(fill_value);
}

int64_t
Tensor::dim(size_t i) const
{
    RP_ASSERT(i < shape_.size(), "dim %zu out of rank %zu", i, shape_.size());
    return shape_[i];
}

float &
Tensor::at(int64_t i)
{
    RP_ASSERT(i >= 0 && i < size_, "flat index %lld out of %lld",
              static_cast<long long>(i), static_cast<long long>(size_));
    return buf_[static_cast<size_t>(i)];
}

float
Tensor::at(int64_t i) const
{
    RP_ASSERT(i >= 0 && i < size_, "flat index %lld out of %lld",
              static_cast<long long>(i), static_cast<long long>(size_));
    return buf_[static_cast<size_t>(i)];
}

float &
Tensor::at(int64_t r, int64_t c)
{
    RP_ASSERT(rank() == 2, "2-D access on rank-%zu tensor", rank());
    RP_ASSERT(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
              "index (%lld, %lld) out of %s", static_cast<long long>(r),
              static_cast<long long>(c), shapeToString(shape_).c_str());
    return buf_[static_cast<size_t>(r * shape_[1] + c)];
}

float
Tensor::at(int64_t r, int64_t c) const
{
    return const_cast<Tensor *>(this)->at(r, c);
}

void
Tensor::fill(float value)
{
    for (int64_t i = 0; i < size_; ++i)
        buf_[static_cast<size_t>(i)] = value;
}

void
Tensor::fillUniform(Rng &rng, float lo, float hi)
{
    for (int64_t i = 0; i < size_; ++i)
        buf_[static_cast<size_t>(i)] = rng.nextFloat(lo, hi);
}

void
Tensor::fillGaussian(Rng &rng, float stddev)
{
    for (int64_t i = 0; i < size_; ++i)
        buf_[static_cast<size_t>(i)] =
            static_cast<float>(rng.nextGaussian()) * stddev;
}

bool
Tensor::allClose(const Tensor &other, float tol) const
{
    if (shape_ != other.shape_)
        return false;
    for (int64_t i = 0; i < size_; ++i) {
        float a = buf_[static_cast<size_t>(i)];
        float b = other.buf_[static_cast<size_t>(i)];
        float scale = std::max({1.0f, std::fabs(a), std::fabs(b)});
        if (std::fabs(a - b) > tol * scale)
            return false;
    }
    return true;
}

Tensor
Tensor::reshaped(Shape new_shape) const
{
    RP_ASSERT(numElements(new_shape) == size_,
              "reshape %s -> %s changes element count",
              shapeToString(shape_).c_str(),
              shapeToString(new_shape).c_str());
    Tensor out(std::move(new_shape));
    if (size_ > 0) {
        std::memcpy(out.data(), data(),
                    static_cast<size_t>(size_) * sizeof(float));
    }
    return out;
}

} // namespace recperf
