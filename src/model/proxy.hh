/**
 * @file
 * Proxy descriptions of non-recommendation DNNs.
 *
 * The paper positions recommendation models against well-known CNNs and
 * RNNs (Fig 2: FLOPs vs bytes; Fig 4: fleet operator breakdown; Fig 5:
 * per-operator compute intensity and MPKI). These proxies capture the
 * published arithmetic/parameter totals of those networks plus the
 * canonical single layers (ResNet-50 conv and FC, NLP LSTM) used in
 * Fig 5's operator comparison.
 */

#ifndef RECPERF_MODEL_PROXY_HH
#define RECPERF_MODEL_PROXY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ops/op_cost.hh"

namespace recperf {

/** Coarse description of a non-recommendation DNN. */
struct ProxyModel
{
    std::string name;
    double flopsPerSample = 0.0;     ///< forward FLOPs per input sample
    double paramBytes = 0.0;         ///< fp32 parameter footprint
    double actBytesPerSample = 0.0;  ///< activation traffic per sample
    /** Approximate fraction of runtime per operator kind. */
    std::map<OpKind, double> opShare;

    /** Aggregate cost of one batched inference. */
    OpCost cost(int64_t batch) const;
};

/** GNMT, VGG16, DeepSpeech2, ResNet50, GoogLeNet — the Fig 2 set. */
std::vector<ProxyModel> proxyModels();

/** A representative ResNet-50 3x3 conv layer (256ch, 14x14). */
OpCost convLayerCost(int64_t batch);

/** One timestep of a 1024-wide NLP LSTM cell. */
OpCost lstmLayerCost(int64_t batch);

/** The ResNet-50 classifier FC (2048 -> 1000). */
OpCost fcLayerCost(int64_t batch);

} // namespace recperf

#endif // RECPERF_MODEL_PROXY_HH
