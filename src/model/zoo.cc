#include "model/zoo.hh"

namespace recperf {

ModelConfig
rmc1Small()
{
    ModelConfig m;
    m.name = "RMC1-small";
    m.modelClass = ModelClass::RMC1;
    m.denseFeatures = 128;
    m.bottomMlp = {128, 64, 32};
    m.emb = {/*numTables=*/4, /*rowsPerTable=*/200'000, /*embDim=*/32,
             /*lookupsPerTable=*/80};
    m.topMlp = {128, 32, 1};
    m.validate();
    return m;
}

ModelConfig
rmc1Large()
{
    ModelConfig m;
    m.name = "RMC1-large";
    m.modelClass = ModelClass::RMC1;
    m.denseFeatures = 256;
    m.bottomMlp = {256, 128, 32};
    m.emb = {12, 200'000, 32, 80};
    m.topMlp = {256, 64, 1};
    m.validate();
    return m;
}

ModelConfig
rmc2Small()
{
    ModelConfig m;
    m.name = "RMC2-small";
    m.modelClass = ModelClass::RMC2;
    m.denseFeatures = 128;
    m.bottomMlp = {128, 64, 32};
    m.emb = {32, 2'000'000, 32, 80};
    m.topMlp = {128, 32, 1};
    m.validate();
    return m;
}

ModelConfig
rmc2Large()
{
    ModelConfig m;
    m.name = "RMC2-large";
    m.modelClass = ModelClass::RMC2;
    m.denseFeatures = 256;
    m.bottomMlp = {256, 128, 32};
    m.emb = {40, 2'500'000, 32, 120};
    m.topMlp = {256, 64, 1};
    m.validate();
    return m;
}

ModelConfig
rmc3Small()
{
    ModelConfig m;
    m.name = "RMC3-small";
    m.modelClass = ModelClass::RMC3;
    m.denseFeatures = 2048;
    m.bottomMlp = {2560, 256, 128};
    m.emb = {4, 2'000'000, 32, 20};
    m.topMlp = {512, 128, 1};
    m.validate();
    return m;
}

ModelConfig
rmc3Large()
{
    ModelConfig m;
    m.name = "RMC3-large";
    m.modelClass = ModelClass::RMC3;
    m.denseFeatures = 4096;
    m.bottomMlp = {2560, 512, 128};
    m.emb = {8, 2'500'000, 32, 20};
    m.topMlp = {512, 128, 1};
    m.validate();
    return m;
}

ModelConfig
rmc2Mixed()
{
    ModelConfig m = rmc2Small();
    m.name = "RMC2-mixed";
    // 32 tables spanning ~6 MB (50k rows) to ~820 MB (6.4M rows) at
    // fp32/dim-32; aggregate ~6.5 GB, comparable to RMC2-small.
    m.emb.tableRows.clear();
    for (int64_t t = 0; t < m.emb.numTables; ++t) {
        // Geometric spread over two orders of magnitude.
        int64_t rows = 50'000ll << (t % 8);
        m.emb.tableRows.push_back(rows);
    }
    m.validate();
    return m;
}

ModelConfig
rmc3Dot()
{
    ModelConfig m = rmc3Small();
    m.name = "RMC3-dot";
    // Dot interaction requires the Bottom-FC output to match the
    // embedding dimension; more tables give the interaction substance.
    m.bottomMlp = {2560, 512, 32};
    m.emb.numTables = 12;
    m.interaction = InteractionKind::Dot;
    m.validate();
    return m;
}

std::vector<ModelConfig>
representativeModels()
{
    return {rmc1Small(), rmc2Small(), rmc3Small()};
}

std::vector<ModelConfig>
allZooModels()
{
    return {rmc1Small(), rmc1Large(), rmc2Small(),
            rmc2Large(), rmc3Small(), rmc3Large()};
}

ModelConfig
rmc1PaperExample()
{
    ModelConfig m;
    m.name = "RMC1-paper-example";
    m.modelClass = ModelClass::RMC1;
    m.denseFeatures = 128;
    m.bottomMlp = {128, 64, 32};
    m.emb = {5, 100'000, 32, 80};
    m.topMlp = {128, 32, 1};
    m.validate();
    return m;
}

ModelConfig
ncfConfig()
{
    // MLPerf-NCF on MovieLens-20m: user and item embeddings for the
    // GMF and MLP towers (138k users / 27k items; modeled as four
    // uniform tables of the average size), single lookup per table,
    // small MLP, no dense features.
    ModelConfig m;
    m.name = "MLPerf-NCF";
    m.modelClass = ModelClass::NCF;
    m.denseFeatures = 0;
    m.bottomMlp = {};
    m.emb = {4, 82'000, 64, 1};
    m.topMlp = {256, 128, 64, 1};
    m.validate();
    return m;
}

} // namespace recperf
