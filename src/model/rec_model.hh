/**
 * @file
 * Functional execution of a recommendation model (Fig 3).
 *
 * Dense features flow through the Bottom-FC stack; each sparse-feature
 * vector is pooled through its embedding table (SparseLengthsSum); the
 * results are concatenated and processed by the Top-FC stack; a sigmoid
 * produces the predicted click-through rate.
 */

#ifndef RECPERF_MODEL_REC_MODEL_HH
#define RECPERF_MODEL_REC_MODEL_HH

#include <vector>

#include "model/config.hh"
#include "ops/fully_connected.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

namespace recperf {

class CancelToken;
class Rng;

/** Sparse IDs for one embedding table across a batch. */
struct SparseInput
{
    /** Flat row indices, grouped per sample. */
    std::vector<int64_t> ids;
    /** IDs per sample; lengths.size() == batch. */
    std::vector<int64_t> lengths;
};

/** A full batch of model inputs. */
struct ModelInput
{
    Tensor dense;                     ///< [batch, denseFeatures]
    std::vector<SparseInput> sparse;  ///< one entry per embedding table
};

/**
 * A materialized recommendation model with real fp32 parameters.
 *
 * Construction allocates all weights, so paper-scale configs should be
 * passed through ModelConfig::functionalScale() first; the timing layer
 * characterizes full-scale configs without materializing them.
 */
class RecModel
{
  public:
    /** Build with randomly initialized parameters. */
    RecModel(const ModelConfig &config, Rng &rng);

    const ModelConfig &config() const { return config_; }

    /**
     * Predict CTRs for a batch.
     *
     * @param cancel optional cooperative cancellation token, polled at
     *        per-op granularity (before the bottom MLP, before each
     *        embedding-table lookup of the SLS fan-out, and before the
     *        interaction/top MLP). When it fires, the remaining work
     *        is abandoned and an *empty* tensor is returned — callers
     *        serving with deadlines must check `cancel->cancelled()`
     *        (or the result's numel()) before using the output.
     * @return tensor of shape [batch, 1] with values in (0, 1), or an
     *        empty tensor when cancelled mid-flight.
     */
    Tensor forward(const ModelInput &input,
                   const CancelToken *cancel = nullptr) const;

    /** Draw a random, well-formed input batch for this model. */
    ModelInput randomInput(int64_t batch, Rng &rng) const;

    /** Total parameter count (FC + embeddings). */
    int64_t paramCount() const;

    const std::vector<FullyConnected> &bottomLayers() const { return bottom_; }
    const std::vector<FullyConnected> &topLayers() const { return top_; }
    const std::vector<EmbeddingTable> &tables() const { return tables_; }

    /** @{ Mutable parameter access for optimizers (train/trainer.hh). */
    std::vector<FullyConnected> &bottomLayers() { return bottom_; }
    std::vector<FullyConnected> &topLayers() { return top_; }
    std::vector<EmbeddingTable> &tables() { return tables_; }
    /** @} */

  private:
    ModelConfig config_;
    std::vector<FullyConnected> bottom_;
    std::vector<FullyConnected> top_;
    std::vector<EmbeddingTable> tables_;
};

} // namespace recperf

#endif // RECPERF_MODEL_REC_MODEL_HH
