#include "model/ncf.hh"

#include "core/logging.hh"
#include "core/rng.hh"
#include "ops/elementwise.hh"

namespace recperf {

namespace {

/** Single-ID lookups: each sample gathers exactly one row. */
Tensor
lookupEach(const EmbeddingTable &table, const std::vector<int64_t> &ids)
{
    std::vector<int64_t> lengths(ids.size(), 1);
    return table.forward(ids, lengths);
}

} // namespace

NcfModel::NcfModel(const NcfConfig &config, Rng &rng)
    : config_(config),
      gmf_user_(config.numUsers, config.gmfDim, rng),
      gmf_item_(config.numItems, config.gmfDim, rng),
      mlp_user_(config.numUsers, config.mlpDim, rng),
      mlp_item_(config.numItems, config.mlpDim, rng),
      final_(config.gmfDim +
                 (config.mlpLayers.empty() ? 2 * config.mlpDim
                                           : config.mlpLayers.back()),
             1, rng)
{
    int64_t in = 2 * config.mlpDim;
    for (int64_t out : config.mlpLayers) {
        mlp_.emplace_back(in, out, rng);
        in = out;
    }
}

Tensor
NcfModel::forward(const NcfInput &input) const
{
    RP_ASSERT(input.userIds.size() == input.itemIds.size(),
              "NCF input user/item count mismatch");
    int64_t batch = static_cast<int64_t>(input.userIds.size());
    RP_ASSERT(batch > 0, "NCF empty batch");

    // GMF tower: element-wise product of user and item embeddings.
    Tensor gu = lookupEach(gmf_user_, input.userIds);
    Tensor gi = lookupEach(gmf_item_, input.itemIds);
    Tensor gmf({batch, config_.gmfDim});
    for (int64_t i = 0; i < gmf.size(); ++i)
        gmf.data()[i] = gu.data()[i] * gi.data()[i];

    // MLP tower: concatenated embeddings through the FC stack.
    Tensor mu = lookupEach(mlp_user_, input.userIds);
    Tensor mi = lookupEach(mlp_item_, input.itemIds);
    Tensor z = concatCols({&mu, &mi});
    for (const FullyConnected &fc : mlp_) {
        z = fc.forward(z);
        reluInplace(z);
    }

    Tensor joined = concatCols({&gmf, &z});
    return sigmoid(final_.forward(joined));
}

NcfInput
NcfModel::randomInput(int64_t batch, Rng &rng) const
{
    NcfInput input;
    for (int64_t i = 0; i < batch; ++i) {
        input.userIds.push_back(static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(config_.numUsers))));
        input.itemIds.push_back(static_cast<int64_t>(
            rng.nextBelow(static_cast<uint64_t>(config_.numItems))));
    }
    return input;
}

int64_t
NcfModel::paramCount() const
{
    int64_t params = gmf_user_.paramCount() + gmf_item_.paramCount() +
        mlp_user_.paramCount() + mlp_item_.paramCount() +
        final_.paramCount();
    for (const FullyConnected &fc : mlp_)
        params += fc.paramCount();
    return params;
}

} // namespace recperf
