#include "model/config.hh"

#include <algorithm>

#include "core/logging.hh"
#include "ops/elementwise.hh"
#include "ops/fully_connected.hh"
#include "ops/sparse_lengths_sum.hh"

namespace recperf {

const char *
modelClassName(ModelClass c)
{
    switch (c) {
      case ModelClass::RMC1: return "RMC1";
      case ModelClass::RMC2: return "RMC2";
      case ModelClass::RMC3: return "RMC3";
      case ModelClass::NCF: return "NCF";
      case ModelClass::Other: return "Other";
    }
    return "Unknown";
}

const char *
embPrecisionName(EmbPrecision precision)
{
    switch (precision) {
      case EmbPrecision::Fp32: return "fp32";
      case EmbPrecision::Fp16: return "fp16";
      case EmbPrecision::Int8: return "int8";
    }
    return "unknown";
}

int64_t
EmbeddingConfig::rowsOf(int64_t index) const
{
    RP_ASSERT(index >= 0 && index < numTables, "table %lld out of %lld",
              static_cast<long long>(index),
              static_cast<long long>(numTables));
    if (!tableRows.empty())
        return tableRows[static_cast<size_t>(index)];
    return rowsPerTable;
}

int64_t
EmbeddingConfig::totalRows() const
{
    if (tableRows.empty())
        return numTables * rowsPerTable;
    int64_t total = 0;
    for (int64_t rows : tableRows)
        total += rows;
    return total;
}

int64_t
EmbeddingConfig::rowBytes() const
{
    switch (precision) {
      case EmbPrecision::Fp32: return embDim * 4;
      case EmbPrecision::Fp16: return embDim * 2;
      case EmbPrecision::Int8: return embDim + 8;
    }
    RP_PANIC("unreachable precision");
}

const char *
interactionKindName(InteractionKind kind)
{
    switch (kind) {
      case InteractionKind::Concat: return "concat";
      case InteractionKind::Dot: return "dot";
    }
    return "unknown";
}

void
ModelConfig::validate() const
{
    RP_ASSERT(!topMlp.empty(), "%s: model needs a Top-FC stack",
              name.c_str());
    RP_ASSERT(topMlp.back() == 1, "%s: final Top-FC width must be 1",
              name.c_str());
    for (int64_t w : bottomMlp)
        RP_ASSERT(w > 0, "%s: non-positive Bottom-FC width", name.c_str());
    for (int64_t w : topMlp)
        RP_ASSERT(w > 0, "%s: non-positive Top-FC width", name.c_str());
    if (!bottomMlp.empty()) {
        RP_ASSERT(denseFeatures > 0,
                  "%s: Bottom-FC present but no dense features",
                  name.c_str());
    }
    if (emb.numTables > 0) {
        RP_ASSERT((emb.rowsPerTable > 0 || !emb.tableRows.empty()) &&
                  emb.embDim > 0 && emb.lookupsPerTable > 0,
                  "%s: incomplete embedding config", name.c_str());
        if (!emb.tableRows.empty()) {
            RP_ASSERT(static_cast<int64_t>(emb.tableRows.size()) ==
                      emb.numTables,
                      "%s: %zu per-table row counts for %lld tables",
                      name.c_str(), emb.tableRows.size(),
                      static_cast<long long>(emb.numTables));
            for (int64_t rows : emb.tableRows)
                RP_ASSERT(rows > 0, "%s: non-positive table rows",
                          name.c_str());
        }
    }
    if (interaction == InteractionKind::Dot) {
        RP_ASSERT(emb.numTables > 0,
                  "%s: dot interaction needs embedding tables",
                  name.c_str());
        RP_ASSERT(bottomMlp.empty() || bottomOutDim() == emb.embDim,
                  "%s: dot interaction needs bottomOutDim == embDim "
                  "(%lld != %lld)", name.c_str(),
                  static_cast<long long>(bottomOutDim()),
                  static_cast<long long>(emb.embDim));
    }
    RP_ASSERT(topInputDim() > 0, "%s: model has no inputs at all",
              name.c_str());
}

int64_t
ModelConfig::featureCount() const
{
    return emb.numTables + (bottomMlp.empty() ? 0 : 1);
}

int64_t
ModelConfig::bottomOutDim() const
{
    return bottomMlp.empty() ? 0 : bottomMlp.back();
}

int64_t
ModelConfig::topInputDim() const
{
    if (interaction == InteractionKind::Dot) {
        int64_t f = featureCount();
        return f * (f - 1) / 2 + bottomOutDim();
    }
    return bottomOutDim() + emb.numTables * emb.embDim;
}

int64_t
ModelConfig::fcParamCount() const
{
    int64_t params = 0;
    int64_t in = denseFeatures;
    for (int64_t out : bottomMlp) {
        params += in * out + out;
        in = out;
    }
    in = topInputDim();
    for (int64_t out : topMlp) {
        params += in * out + out;
        in = out;
    }
    return params;
}

int64_t
ModelConfig::embParamCount() const
{
    return emb.totalRows() * emb.embDim;
}

int64_t
ModelConfig::embStorageBytes() const
{
    return emb.totalRows() * emb.rowBytes();
}

int64_t
ModelConfig::lookupsPerSample() const
{
    return emb.numTables * emb.lookupsPerTable;
}

OpCost
ModelConfig::inferenceCost(int64_t batch) const
{
    OpCost total;
    int64_t in = denseFeatures;
    for (int64_t out : bottomMlp) {
        total += FullyConnected::cost(batch, in, out);
        total += elementwiseCost(batch * out); // ReLU
        in = out;
    }
    if (emb.numTables > 0) {
        OpCost sls = EmbeddingTable::cost(
            batch * lookupsPerSample(), batch * emb.numTables, emb.embDim);
        // Adjust the table-read traffic for the storage precision.
        sls.bytesRead = static_cast<double>(batch * lookupsPerSample()) *
                static_cast<double>(emb.rowBytes()) +
            static_cast<double>(batch * lookupsPerSample()) *
                sizeof(int64_t);
        total += sls;
    }
    if (interaction == InteractionKind::Dot) {
        int64_t f = featureCount();
        OpCost dot;
        dot.flops = static_cast<double>(batch) *
            static_cast<double>(f * (f - 1) / 2) * 2.0 *
            static_cast<double>(emb.embDim);
        dot.bytesRead = static_cast<double>(batch) *
            static_cast<double>(f) * static_cast<double>(emb.embDim) * 4.0;
        dot.bytesWritten = static_cast<double>(batch) *
            static_cast<double>(topInputDim()) * 4.0;
        total += dot;
    } else {
        total += concatCost(batch * topInputDim());
    }
    in = topInputDim();
    for (size_t i = 0; i < topMlp.size(); ++i) {
        int64_t out = topMlp[i];
        total += FullyConnected::cost(batch, in, out);
        total += elementwiseCost(batch * out); // ReLU / sigmoid
        in = out;
    }
    return total;
}

ModelConfig
ModelConfig::functionalScale(int64_t max_rows) const
{
    ModelConfig scaled = *this;
    scaled.emb.rowsPerTable = std::min(emb.rowsPerTable, max_rows);
    bool changed = scaled.emb.rowsPerTable != emb.rowsPerTable;
    for (int64_t &rows : scaled.emb.tableRows) {
        changed |= rows > max_rows;
        rows = std::min(rows, max_rows);
    }
    if (changed)
        scaled.name += "-functional";
    return scaled;
}

} // namespace recperf
