/**
 * @file
 * Architecture description of a recommendation model (Fig 3 / Fig 13).
 *
 * A config captures exactly the tunable parameters the paper's
 * open-source benchmark exposes (Section VII-A): number of embedding
 * tables, their input (rows) and output (embedding) dimensions, sparse
 * lookups per table, and the depth/width of the Bottom- and Top-MLPs.
 * Configs drive both the functional model (tensor execution) and the
 * timing model (shape-only cost estimation), so paper-scale configs
 * with multi-GB tables never need to be allocated to be characterized.
 */

#ifndef RECPERF_MODEL_CONFIG_HH
#define RECPERF_MODEL_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ops/op_cost.hh"

namespace recperf {

/** The three production model classes plus baselines (Section III). */
enum class ModelClass
{
    RMC1, ///< filtering: small FCs, few small embedding tables
    RMC2, ///< ranking: many embedding tables (memory-intensive)
    RMC3, ///< ranking: large FCs (compute-intensive)
    NCF,  ///< MLPerf neural collaborative filtering baseline
    Other,
};

/** Display name, e.g. "RMC2". */
const char *modelClassName(ModelClass c);

/**
 * How the pooled embeddings and the Bottom-FC output are combined
 * before the Top-FC stack (Fig 3's "+" node).
 */
enum class InteractionKind
{
    /** Plain feature concatenation (the Fig 3 default). */
    Concat,
    /**
     * DLRM-style pairwise dot products via batched matrix multiply —
     * the BatchMatMul operator that dominates RMC3 alongside FC (§V).
     * Requires bottomOutDim() == emb.embDim.
     */
    Dot,
};

/** Display name, e.g. "dot". */
const char *interactionKindName(InteractionKind kind);

/**
 * Storage precision of the embedding tables. Lower precisions shrink
 * both capacity and the cache lines touched per gather — the
 * compression lever the paper's §VIII points at.
 */
enum class EmbPrecision
{
    Fp32, ///< 4 B/element (production default, §IV)
    Fp16, ///< 2 B/element
    Int8, ///< 1 B/element + 8 B/row fused scale/bias
};

/** Display name, e.g. "int8". */
const char *embPrecisionName(EmbPrecision precision);

/** Embedding-table block of a model. */
struct EmbeddingConfig
{
    EmbeddingConfig() = default;

    EmbeddingConfig(int64_t tables, int64_t rows, int64_t dim,
                    int64_t lookups,
                    EmbPrecision prec = EmbPrecision::Fp32)
        : numTables(tables), rowsPerTable(rows), embDim(dim),
          lookupsPerTable(lookups), precision(prec)
    {
    }

    int64_t numTables = 0;
    int64_t rowsPerTable = 0;
    int64_t embDim = 0;
    int64_t lookupsPerTable = 0; ///< sparse IDs pooled per sample
    EmbPrecision precision = EmbPrecision::Fp32;

    /**
     * Optional per-table row counts. Production models mix tables
     * spanning tens of MB to GBs (Section II-C); when non-empty this
     * overrides rowsPerTable and its size must equal numTables.
     */
    std::vector<int64_t> tableRows;

    /** Row count of table @p index (honoring the override). */
    int64_t rowsOf(int64_t index) const;

    /** Sum of rows across all tables. */
    int64_t totalRows() const;

    /** Stored bytes per embedding row at the configured precision. */
    int64_t rowBytes() const;
};

/** Full architecture of one recommendation model. */
struct ModelConfig
{
    std::string name;
    ModelClass modelClass = ModelClass::Other;

    /** Width of the dense-feature input vector. */
    int64_t denseFeatures = 0;

    /**
     * Output widths of the Bottom-FC stack; the input of layer i is
     * denseFeatures (i==0) or bottomMlp[i-1]. Empty when the model has
     * no dense inputs (e.g. NCF).
     */
    std::vector<int64_t> bottomMlp;

    EmbeddingConfig emb;

    /** Feature-combination operator ahead of the Top-FC stack. */
    InteractionKind interaction = InteractionKind::Concat;

    /**
     * Output widths of the Top-FC stack; its input is the interaction
     * of the Bottom-FC output and all pooled embeddings (see
     * topInputDim()). The final width must be 1 (the predicted CTR).
     */
    std::vector<int64_t> topMlp;

    /** Panics on an inconsistent configuration. */
    void validate() const;

    /** Width of the Bottom-FC output (0 when there is no bottom MLP). */
    int64_t bottomOutDim() const;

    /**
     * Number of interacting feature vectors (pooled tables plus the
     * Bottom-FC output when present).
     */
    int64_t featureCount() const;

    /**
     * Input width of the Top-FC stack: for Concat, the features laid
     * side by side; for Dot, the f*(f-1)/2 pairwise products plus the
     * Bottom-FC output (DLRM convention).
     */
    int64_t topInputDim() const;

    /** FC parameters (weights + biases) across both MLP stacks. */
    int64_t fcParamCount() const;

    /** Embedding parameters across all tables. */
    int64_t embParamCount() const;

    /** Embedding storage at fp32. */
    int64_t embStorageBytes() const;

    /** Total sparse IDs gathered per sample. */
    int64_t lookupsPerSample() const;

    /**
     * Aggregate arithmetic/traffic cost of one batched inference
     * (Fig 2's FLOPs and bytes-read axes).
     */
    OpCost inferenceCost(int64_t batch) const;

    /**
     * A functionally-equivalent config with embedding rows capped at
     * @p max_rows, for allocatable tensor execution in tests/examples.
     * Timing characterization always uses the original config.
     */
    ModelConfig functionalScale(int64_t max_rows = 4096) const;
};

} // namespace recperf

#endif // RECPERF_MODEL_CONFIG_HH
