#include "model/rec_model.hh"

#include "core/cancellation.hh"
#include "core/logging.hh"
#include "core/rng.hh"
#include "core/thread_pool.hh"
#include "ops/batch_matmul.hh"
#include "ops/elementwise.hh"

namespace recperf {

RecModel::RecModel(const ModelConfig &config, Rng &rng) : config_(config)
{
    config_.validate();

    int64_t in = config_.denseFeatures;
    for (int64_t out : config_.bottomMlp) {
        bottom_.emplace_back(in, out, rng);
        in = out;
    }
    for (int64_t t = 0; t < config_.emb.numTables; ++t) {
        tables_.emplace_back(config_.emb.rowsOf(t), config_.emb.embDim,
                             rng);
    }
    in = config_.topInputDim();
    for (int64_t out : config_.topMlp) {
        top_.emplace_back(in, out, rng);
        in = out;
    }
}

Tensor
RecModel::forward(const ModelInput &input,
                  const CancelToken *cancel) const
{
    int64_t batch = 0;
    Tensor bottom_out;

    if (cancel && cancel->cancelled())
        return Tensor{};

    if (!bottom_.empty()) {
        RP_ASSERT(input.dense.rank() == 2 &&
                  input.dense.dim(1) == config_.denseFeatures,
                  "%s: dense input shape %s does not match %lld features",
                  config_.name.c_str(),
                  shapeToString(input.dense.shape()).c_str(),
                  static_cast<long long>(config_.denseFeatures));
        batch = input.dense.dim(0);
        bottom_out = input.dense.reshaped(input.dense.shape());
        for (const FullyConnected &fc : bottom_) {
            bottom_out = fc.forward(bottom_out);
            reluInplace(bottom_out);
        }
    }

    RP_ASSERT(static_cast<int64_t>(input.sparse.size()) ==
              config_.emb.numTables,
              "%s: expected %lld sparse inputs, got %zu",
              config_.name.c_str(),
              static_cast<long long>(config_.emb.numTables),
              input.sparse.size());

    // Validate shapes up front, then fan the independent per-table
    // lookups across the pool (inter-op parallelism — the RMC2 tables
    // are the embedding fan-out the paper identifies as the
    // memory-bound hot path). Each table's pooled gather runs the
    // serial kernel inline, so outputs match the sequential loop
    // bitwise.
    int64_t num_tables = static_cast<int64_t>(input.sparse.size());
    for (int64_t t = 0; t < num_tables; ++t) {
        const SparseInput &sp = input.sparse[static_cast<size_t>(t)];
        if (batch == 0)
            batch = static_cast<int64_t>(sp.lengths.size());
        RP_ASSERT(static_cast<int64_t>(sp.lengths.size()) == batch,
                  "%s: table %lld batch mismatch", config_.name.c_str(),
                  static_cast<long long>(t));
    }
    std::vector<Tensor> pooled(static_cast<size_t>(num_tables));
    if (num_tables >= globalThreadCount()) {
        // Each worker polls the token per table; tables already pooled
        // keep their results, tables not yet started are skipped, and
        // the whole forward reports cancelled below.
        parallelFor(0, num_tables, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t t = lo; t < hi; ++t) {
                if (cancel && cancel->cancelled())
                    return;
                const SparseInput &sp =
                    input.sparse[static_cast<size_t>(t)];
                pooled[static_cast<size_t>(t)] =
                    tables_[static_cast<size_t>(t)].forward(sp.ids,
                                                            sp.lengths);
            }
        });
        if (cancel && cancel->cancelled())
            return Tensor{};
    } else {
        // Fewer tables than threads: run tables sequentially and let
        // each lookup parallelize across its output slots instead.
        for (int64_t t = 0; t < num_tables; ++t) {
            if (cancel && cancel->cancelled())
                return Tensor{};
            const SparseInput &sp =
                input.sparse[static_cast<size_t>(t)];
            pooled[static_cast<size_t>(t)] =
                tables_[static_cast<size_t>(t)].forward(sp.ids,
                                                        sp.lengths);
        }
    }

    if (cancel && cancel->cancelled())
        return Tensor{};

    std::vector<const Tensor *> features;
    if (!bottom_.empty())
        features.push_back(&bottom_out);
    for (const Tensor &p : pooled)
        features.push_back(&p);

    Tensor z;
    if (config_.interaction == InteractionKind::Dot) {
        // Stack the feature vectors into [batch, f, d], take all
        // pairwise dot products, and append the Bottom-FC output
        // (DLRM's "dot" interaction).
        int64_t f = static_cast<int64_t>(features.size());
        int64_t d = config_.emb.embDim;
        Tensor stacked = concatCols(features).reshaped({batch, f, d});
        Tensor pairs = dotInteraction(stacked);
        if (!bottom_.empty())
            z = concatCols({&pairs, &bottom_out});
        else
            z = std::move(pairs);
    } else {
        z = concatCols(features);
    }

    for (size_t i = 0; i < top_.size(); ++i) {
        z = top_[i].forward(z);
        if (i + 1 < top_.size())
            reluInplace(z);
    }
    return sigmoid(z);
}

ModelInput
RecModel::randomInput(int64_t batch, Rng &rng) const
{
    RP_ASSERT(batch > 0, "batch must be positive");
    ModelInput input;
    if (config_.denseFeatures > 0) {
        input.dense = Tensor({batch, config_.denseFeatures});
        input.dense.fillUniform(rng, -1.0f, 1.0f);
    } else {
        input.dense = Tensor({batch, 0});
    }
    for (int64_t t = 0; t < config_.emb.numTables; ++t) {
        SparseInput sp;
        sp.lengths.assign(static_cast<size_t>(batch),
                          config_.emb.lookupsPerTable);
        for (int64_t i = 0; i < batch * config_.emb.lookupsPerTable; ++i) {
            sp.ids.push_back(static_cast<int64_t>(
                rng.nextBelow(static_cast<uint64_t>(
                    config_.emb.rowsOf(t)))));
        }
        input.sparse.push_back(std::move(sp));
    }
    return input;
}

int64_t
RecModel::paramCount() const
{
    return config_.fcParamCount() + config_.embParamCount();
}

} // namespace recperf
