/**
 * @file
 * Neural Collaborative Filtering (NeuMF) — the MLPerf baseline.
 *
 * The paper contrasts its production models with MLPerf-NCF (Section
 * VII, Fig 12): NCF has orders-of-magnitude smaller embedding tables,
 * fewer/smaller FC layers, and single-ID lookups, so FC dominates its
 * runtime (>90%) where SLS dominates RMC1/RMC2. This is the faithful
 * functional implementation (GMF + MLP towers, He et al. 2017) used to
 * reproduce that comparison.
 */

#ifndef RECPERF_MODEL_NCF_HH
#define RECPERF_MODEL_NCF_HH

#include <cstdint>
#include <vector>

#include "ops/fully_connected.hh"
#include "ops/sparse_lengths_sum.hh"
#include "tensor/tensor.hh"

namespace recperf {

class Rng;

/** Architecture of a NeuMF model. */
struct NcfConfig
{
    int64_t numUsers = 138'000;       ///< MovieLens-20m user count
    int64_t numItems = 27'000;        ///< MovieLens-20m item count
    int64_t gmfDim = 64;              ///< GMF embedding dimension
    int64_t mlpDim = 32;              ///< per-side MLP embedding dim
    std::vector<int64_t> mlpLayers = {256, 128, 64};
};

/** A batch of (user, item) pairs to score. */
struct NcfInput
{
    std::vector<int64_t> userIds;
    std::vector<int64_t> itemIds;
};

/**
 * NeuMF: sigmoid(W_final * [gmf_user ⊙ gmf_item ; MLP([u; i])]).
 */
class NcfModel
{
  public:
    NcfModel(const NcfConfig &config, Rng &rng);

    const NcfConfig &config() const { return config_; }

    /** Predicted interaction probabilities, shape [batch, 1]. */
    Tensor forward(const NcfInput &input) const;

    /** Draw random user/item pairs. */
    NcfInput randomInput(int64_t batch, Rng &rng) const;

    int64_t paramCount() const;

  private:
    NcfConfig config_;
    EmbeddingTable gmf_user_;
    EmbeddingTable gmf_item_;
    EmbeddingTable mlp_user_;
    EmbeddingTable mlp_item_;
    std::vector<FullyConnected> mlp_;
    FullyConnected final_;
};

} // namespace recperf

#endif // RECPERF_MODEL_NCF_HH
