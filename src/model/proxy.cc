#include "model/proxy.hh"

#include "ops/fully_connected.hh"

namespace recperf {

OpCost
ProxyModel::cost(int64_t batch) const
{
    OpCost c;
    double b = static_cast<double>(batch);
    c.flops = flopsPerSample * b;
    // Parameters are read once per batch; activations scale per sample.
    c.bytesRead = paramBytes + actBytesPerSample * b;
    c.bytesWritten = actBytesPerSample * b;
    return c;
}

std::vector<ProxyModel>
proxyModels()
{
    // FLOPs and parameter totals from the original publications
    // (2 FLOPs per MAC); activation traffic is a coarse estimate.
    std::vector<ProxyModel> models;

    models.push_back({"ResNet50", 4.1e9, 25.5e6 * 4, 30e6,
                      {{OpKind::Conv, 0.93}, {OpKind::FC, 0.02},
                       {OpKind::Activation, 0.03}, {OpKind::Other, 0.02}}});
    models.push_back({"VGG16", 30.8e9, 138e6 * 4, 60e6,
                      {{OpKind::Conv, 0.90}, {OpKind::FC, 0.08},
                       {OpKind::Activation, 0.01}, {OpKind::Other, 0.01}}});
    models.push_back({"GoogLeNet", 3.0e9, 6.8e6 * 4, 25e6,
                      {{OpKind::Conv, 0.90}, {OpKind::FC, 0.02},
                       {OpKind::Concat, 0.03}, {OpKind::Activation, 0.03},
                       {OpKind::Other, 0.02}}});
    models.push_back({"DeepSpeech2", 5.0e9, 38e6 * 4, 20e6,
                      {{OpKind::Recurrent, 0.70}, {OpKind::Conv, 0.20},
                       {OpKind::FC, 0.05}, {OpKind::Activation, 0.05}}});
    models.push_back({"GNMT", 17.0e9, 210e6 * 4, 40e6,
                      {{OpKind::Recurrent, 0.85}, {OpKind::FC, 0.10},
                       {OpKind::Activation, 0.03}, {OpKind::Other, 0.02}}});
    return models;
}

OpCost
convLayerCost(int64_t batch)
{
    // 3x3 conv, 256 -> 256 channels, 14x14 output (a ResNet-50 stage-4
    // layer). FLOPs = 2 * K^2 * Cin * Cout * H * W per sample.
    const double k2 = 9.0, cin = 256.0, cout = 256.0, hw = 14.0 * 14.0;
    const double b = static_cast<double>(batch);
    OpCost c;
    c.flops = 2.0 * k2 * cin * cout * hw * b;
    double weight_bytes = k2 * cin * cout * 4.0;
    double act_bytes = hw * (cin + cout) * 4.0 * b;
    c.bytesRead = weight_bytes + act_bytes / 2.0 + act_bytes / 2.0;
    c.bytesWritten = hw * cout * 4.0 * b;
    return c;
}

OpCost
lstmLayerCost(int64_t batch)
{
    // One timestep of an LSTM cell with hidden = input = 1024: four
    // gates, each a (h+i) x h GEMM. Weights are re-read every step.
    const double h = 1024.0, in = 1024.0;
    const double b = static_cast<double>(batch);
    OpCost c;
    c.flops = 2.0 * 4.0 * h * (h + in) * b + 8.0 * h * b;
    c.bytesRead = 4.0 * h * (h + in) * 4.0 + (h + in) * 4.0 * b;
    c.bytesWritten = h * 4.0 * b;
    return c;
}

OpCost
fcLayerCost(int64_t batch)
{
    // ResNet-50 classifier: 2048 -> 1000.
    return FullyConnected::cost(batch, 2048, 1000);
}

} // namespace recperf
