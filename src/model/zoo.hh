/**
 * @file
 * The production-representative model zoo (Table I).
 *
 * Concrete dimensions are chosen to satisfy every quantitative anchor
 * the paper gives for the three model classes:
 *  - embedding output dimension between 24 and 40 (we use 32);
 *  - aggregate embedding storage ~100 MB (RMC1), ~10 GB (RMC2),
 *    ~1 GB (RMC3) at fp32 (Section III-B);
 *  - tables per model between 4 and 40; RMC2 has ~10x more than
 *    RMC1/RMC3;
 *  - RMC1/RMC2 pool ~4x more sparse IDs per table than RMC3;
 *  - RMC3's Bottom-FC is much wider (more dense features);
 *  - the RMC1 example of Section VII-A (5 tables, 1e5 rows, dim 32,
 *    80 lookups, Bottom 128-64-32, Top 128-32-1) sits between our
 *    small and large RMC1 variants.
 */

#ifndef RECPERF_MODEL_ZOO_HH
#define RECPERF_MODEL_ZOO_HH

#include <vector>

#include "model/config.hh"

namespace recperf {

/** Small RMC1: lightweight filtering model, ~100 MB of tables. */
ModelConfig rmc1Small();

/** Large RMC1: more tables and wider FCs (2x latency of small, §V). */
ModelConfig rmc1Large();

/** Small RMC2: many embedding tables, ~8 GB of tables. */
ModelConfig rmc2Small();

/** Large RMC2: 40 tables, ~13 GB of tables. */
ModelConfig rmc2Large();

/** Small RMC3: compute-intensive ranking model, wide Bottom-FC. */
ModelConfig rmc3Small();

/** Large RMC3: wider still, ~2.6 GB of tables. */
ModelConfig rmc3Large();

/**
 * RMC2 variant with heterogeneous table sizes, spanning tens of MB to
 * GBs per table as in production (§II-C: "the size of a single
 * embedding table varies from tens of MBs to several GBs").
 */
ModelConfig rmc2Mixed();

/**
 * RMC3 variant using DLRM's pairwise dot-product interaction, whose
 * runtime is split between FC and BatchMatMul — the operator mix the
 * paper reports for the heavyweight ranking models ("over 96% of the
 * time in BatchMatMul or FC", Section V).
 */
ModelConfig rmc3Dot();

/** Representative (small) instance of each class, Table I order. */
std::vector<ModelConfig> representativeModels();

/** All six zoo entries. */
std::vector<ModelConfig> allZooModels();

/** The Section VII-A example RMC1 configuration, verbatim. */
ModelConfig rmc1PaperExample();

/**
 * MLPerf-NCF baseline approximated in ModelConfig form for the
 * characterization comparisons of Fig 12 (the faithful functional
 * implementation lives in model/ncf.hh).
 */
ModelConfig ncfConfig();

} // namespace recperf

#endif // RECPERF_MODEL_ZOO_HH
