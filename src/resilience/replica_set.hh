/**
 * @file
 * Replicated shards: health-checked routing, failover, and chaos.
 *
 * DeepRecSys-style serving replicates every table-wise shard R times so
 * that losing a node degrades latency, not availability. This module
 * supplies the building blocks the serving layer composes:
 *
 *  - ReplicaSet: R replicas of one shard, each with its own
 *    HealthTracker and CircuitBreaker. A router policy picks the
 *    replica for each attempt (`primary-first`, `least-loaded`,
 *    `power-of-two-choices`) among replicas whose breaker admits the
 *    request, and nominates the *second-best* replica as the hedge /
 *    failover target — a hedge goes to a known-good peer, not a blind
 *    duplicate.
 *  - Recovery semantics: a replica observed down and later up again
 *    pays a warm-up penalty (its simcache and embedding cache refill
 *    cold), modelled as a service-time multiplier that decays linearly
 *    over a warm-up window. The multiplier's magnitude defaults to the
 *    measured cold/steady ratio of the shard's own timing model.
 *  - ChaosSchedule: a seeded list of scripted fault windows layered on
 *    top of the renewal-process FaultInjector — single-replica kills,
 *    correlated rack failures (the same replica rank across every
 *    shard), and straggler storms — for chaos testing.
 *
 * Everything is deterministic for a fixed seed.
 */

#ifndef RECPERF_RESILIENCE_REPLICA_SET_HH
#define RECPERF_RESILIENCE_REPLICA_SET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "resilience/circuit_breaker.hh"
#include "resilience/health.hh"

namespace recperf {

/** Replica-selection policies of the failover router. */
enum class RouterPolicy
{
    PrimaryFirst, ///< lowest admitted index (replica 0 is primary)
    LeastLoaded,  ///< least virtual outstanding work, then best EWMA
    PowerOfTwo,   ///< two seeded candidates, keep the less loaded
};

/** Parse a CLI router name; empty error string on success. */
bool routerPolicyFromName(const std::string &name, RouterPolicy *policy);

const char *routerPolicyName(RouterPolicy policy);

/** Replication / failover knobs of a sharded run. */
struct ReplicaOptions
{
    /** Replicas per shard (>= 1; 1 disables failover). */
    uint32_t replicas = 2;

    RouterPolicy router = RouterPolicy::PrimaryFirst;

    /** Per-replica breaker configuration. */
    BreakerOptions breaker;

    /** Window over which a recovered replica warms back up. */
    double warmupSeconds = 2e-3;

    /**
     * Service-time multiplier right after recovery; decays linearly to
     * 1 over warmupSeconds. 0 auto-calibrates to the measured
     * cold-start/steady-state ratio of the shard timing model.
     */
    double warmupFactor = 0.0;

    uint64_t seed = 2020;

    /** Empty when the options are sane, else a description. */
    std::string validate() const;
};

/** One scripted chaos fault window. */
struct ChaosEvent
{
    enum class Kind
    {
        KillReplica,   ///< one (shard, replica) down for [start, end)
        KillRack,      ///< replica rank down on *every* shard
        StragglerStorm ///< all service times inflated by factor
    };

    Kind kind = Kind::KillReplica;
    double start = 0.0;
    double end = 0.0;
    uint32_t shard = 0;   ///< KillReplica only
    uint32_t replica = 0; ///< KillReplica / KillRack: replica rank
    double factor = 1.0;  ///< StragglerStorm inflation
};

/**
 * Seeded list of scripted fault windows, queried by the serving loop on
 * top of the FaultInjector's renewal processes.
 */
class ChaosSchedule
{
  public:
    void add(const ChaosEvent &event);

    /**
     * Draw a randomized schedule: @p events windows of all three kinds
     * spread uniformly over [0, horizon), with durations uniform in
     * [0.2, 1.0] x @p mean_duration. Deterministic from @p seed.
     */
    static ChaosSchedule random(uint64_t seed, uint32_t num_shards,
                                uint32_t replicas, double horizon_seconds,
                                uint32_t events,
                                double mean_duration_seconds);

    /** Whether a scripted window forces this replica down at @p now. */
    bool forcedDown(uint32_t shard, uint32_t replica, double now) const;

    /** Product of active straggler-storm factors at @p now (>= 1). */
    double serviceFactor(double now) const;

    size_t size() const { return events_.size(); }
    const std::vector<ChaosEvent> &events() const { return events_; }

  private:
    std::vector<ChaosEvent> events_;
};

/**
 * R replicas of one shard plus the routing state over them.
 *
 * The set does not model the replicas' compute itself — the caller owns
 * the timing — it owns *selection*: which replica an attempt goes to,
 * which peer backs it up, and the health/breaker/warm-up bookkeeping
 * fed back from attempt outcomes.
 */
class ReplicaSet
{
  public:
    /**
     * @param warmup_factor resolved post-recovery multiplier (the
     *        caller substitutes the measured cold/steady ratio when
     *        ReplicaOptions::warmupFactor is 0).
     */
    ReplicaSet(uint32_t shard, const ReplicaOptions &options,
               double warmup_factor);

    /** Router verdict: chosen replica and its failover/hedge peer. */
    struct Pick
    {
        int replica = -1;   ///< -1 when every breaker rejected
        int alternate = -1; ///< second-best admitted replica, or -1
    };

    /**
     * Select a replica (and its backup) for an attempt at @p now.
     * Consults every breaker, so open breakers are failed over and
     * half-open ones admit seeded probes.
     */
    Pick route(double now);

    /** Fold a successful attempt on @p replica taking @p latency. */
    void recordSuccess(uint32_t replica, double latency, double now);

    /** Fold a refused / timed-out attempt on @p replica. */
    void recordError(uint32_t replica, double now);

    /**
     * Tell the set what the fault processes say about @p replica at
     * @p now; a down -> up edge starts the warm-up window. Returns the
     * observed state unchanged (convenience for call sites).
     */
    bool observeUp(uint32_t replica, bool up, double now);

    /**
     * Post-recovery service multiplier (>= 1) of @p replica at @p now;
     * 1 once the warm-up window has fully decayed.
     */
    double warmupMultiplier(uint32_t replica, double now) const;

    uint32_t size() const
    {
        return static_cast<uint32_t>(replicas_.size());
    }

    const HealthTracker &health(uint32_t replica) const;
    const CircuitBreaker &breaker(uint32_t replica) const;
    CircuitBreaker &breaker(uint32_t replica);

    /** Sum of breaker trips across replicas. */
    uint64_t breakerOpens() const;

    /** Sum of half-open -> closed transitions across replicas. */
    uint64_t breakerCloses() const;

    /** Sum of admitted half-open probes across replicas. */
    uint64_t probesAdmitted() const;

  private:
    struct Replica
    {
        HealthTracker health;
        CircuitBreaker breaker;
        /** Virtual time until which issued work keeps this replica
         *  busy (least-loaded routing signal). */
        double busyUntil = 0.0;
        /** Last state seen by observeUp. */
        bool observedUp = true;
        /** Start of the current warm-up window; <0 = fully warm. */
        double recoveredAt = -1.0;

        Replica(const BreakerOptions &breaker_options, uint64_t salt)
            : breaker(breaker_options, salt)
        {}
    };

    double loadOf(const Replica &replica, double now) const;

    /** true when @p a routes ahead of @p b under the active policy. */
    bool better(const Replica &a, const Replica &b, double now) const;

    /** Trace instant when @p replica's breaker left @p before. */
    void noteBreakerTransition(uint32_t replica, BreakerState before,
                               double now) const;

    uint32_t shard_;
    ReplicaOptions options_;
    double warmup_factor_;
    Rng route_rng_;
    std::vector<Replica> replicas_;
};

} // namespace recperf

#endif // RECPERF_RESILIENCE_REPLICA_SET_HH
