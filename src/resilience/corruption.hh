/**
 * @file
 * Seeded memory-corruption model: the fail-silent fault axis.
 *
 * The fail-stop channels of FaultInjector (stragglers, shard crashes,
 * load spikes) all announce themselves through latency or
 * unavailability. Silent data corruption does not: a flipped DRAM bit
 * in an embedding row serves wrong rankings with perfect latency. This
 * header defines the corruption event stream — what gets hit, when,
 * and how — plus the JSONL reproducibility log. Events are *drawn*
 * here (FaultInjector) and *interpreted* either functionally
 * (ops/integrity.hh shields flip real bytes) or in virtual time
 * (resilience/sdc.hh models detection and repair).
 */

#ifndef RECPERF_RESILIENCE_CORRUPTION_HH
#define RECPERF_RESILIENCE_CORRUPTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ops/integrity.hh"

namespace recperf {

/** Knobs of the memory-corruption channel. */
struct CorruptionOptions
{
    /** Corruption events per second of virtual time; 0 disables. */
    double ratePerSec = 0.0;

    /**
     * Zipf skew of row targeting, aligned with lookup popularity so
     * hot-row corruption is testable (the Fig 14 skew); 0 targets
     * rows uniformly.
     */
    double zipfAlpha = 1.05;

    /** Fraction of events that are multi-bit bursts. */
    double multiBitFraction = 0.2;

    /** Fraction of events that are stuck-at rows. */
    double stuckRowFraction = 0.1;

    /** Fraction of events that hit FC weights instead of tables. */
    double fcFraction = 0.0;

    bool enabled() const { return ratePerSec > 0.0; }

    /** Empty when sane, else a description (CLI rejects early). */
    std::string validate() const;
};

/** One injected memory-corruption event. */
struct CorruptionEvent
{
    double time = 0.0; ///< virtual injection time (seconds)
    CorruptionKind kind = CorruptionKind::SingleBitFlip;
    uint32_t shard = 0;
    uint32_t replica = 0;
    int32_t table = -1; ///< local table index; -1 = FC weights
    int64_t row = 0;
    uint64_t bit = 0; ///< first flipped bit within the row
};

/**
 * What the corruption channel can hit: the sharded layout of the
 * embedding tables plus the (unsharded, aggregator-side) FC weights.
 */
struct CorruptionTopology
{
    uint32_t shards = 0;
    uint32_t replicas = 1;
    int64_t embDim = 0;

    /** Rows of each local table, per shard (round-robin deal). */
    std::vector<std::vector<int64_t>> tableRows;

    int64_t fcRows = 0;    ///< FC weight rows; 0 disables FC targeting
    int64_t fcRowBits = 0; ///< bits per FC weight row

    bool empty() const { return shards == 0; }

    /** Bits per stored embedding row (fp32). */
    int64_t rowBits() const { return embDim * 32; }

    /** Total embedding rows resident on one shard replica. */
    int64_t shardRows(uint32_t shard) const;
};

/**
 * Reproducibility log: every injected fault as one JSONL line, in
 * injection order. check_trace.py --fault-log cross-checks the
 * corruption lines against the exported integrity.* counters.
 */
class FaultLog
{
  public:
    void recordCorruption(const CorruptionEvent &event);

    /** Fail-stop channels ride along for a complete fault record. */
    void recordNodeTransition(uint32_t node, bool up, double time);
    void recordSpike(double time, double duration, double factor);

    /** Corruption events logged so far. */
    uint64_t corruptionCount() const { return corruptions_; }

    /** All events logged so far. */
    size_t size() const { return lines_.size(); }

    std::string toJsonl() const;

    /** Write the log; RP_ASSERTs on I/O failure. */
    void writeFile(const std::string &path) const;

    void clear();

  private:
    std::vector<std::string> lines_;
    uint64_t corruptions_ = 0;
};

} // namespace recperf

#endif // RECPERF_RESILIENCE_CORRUPTION_HH
