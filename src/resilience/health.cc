#include "resilience/health.hh"

#include "core/logging.hh"

namespace recperf {

HealthTracker::HealthTracker(const HealthOptions &options)
    : options_(options)
{
    RP_ASSERT(options_.ewmaAlpha > 0.0 && options_.ewmaAlpha <= 1.0,
              "EWMA alpha %f out of (0,1]", options_.ewmaAlpha);
}

void
HealthTracker::recordSuccess(double latency_seconds, double now)
{
    ewma_ = successes_ == 0
        ? latency_seconds
        : (1.0 - options_.ewmaAlpha) * ewma_ +
            options_.ewmaAlpha * latency_seconds;
    ++successes_;
    consecutive_errors_ = 0;
    last_event_ = now;
}

void
HealthTracker::recordError(double now)
{
    ++errors_;
    ++consecutive_errors_;
    last_event_ = now;
}

} // namespace recperf
