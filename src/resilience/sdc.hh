/**
 * @file
 * Virtual-time silent-data-corruption defense for sharded inference.
 *
 * Models the full detect-and-repair ladder over the corruption events
 * drawn by FaultInjector, in the same discrete-event clock the sharded
 * serving loop runs on:
 *
 *  - a background scrubber sweeps every replica's embedding rows once
 *    per scrub interval (checksum re-verification), which bounds
 *    detection latency by one period and taxes the shard's memory
 *    bandwidth while sweeping;
 *  - inline sampled verification checks the rows a lookup batch
 *    touches on a deterministic subset of batches, trading per-request
 *    overhead for early detection of hot-row corruption;
 *  - output guards + periodic canary queries (golden outputs) catch
 *    corrupted responses at the aggregation boundary before they
 *    escape;
 *  - detected rows are quarantined (served stale/zero at the brownout
 *    stale-embeddings quality score) while an asynchronous re-fetch
 *    from a modeled parameter store repairs them over a serialized
 *    transfer channel; when a replica's corruption density crosses a
 *    threshold the ladder escalates to a full drain + rehydrate, which
 *    flows through the existing ReplicaSet failover/warm-up path.
 *
 * Everything is seeded and deterministic; with the options at their
 * defaults no controller is constructed and the serving loop's
 * schedule, metrics and trace are byte-identical to a build without
 * this subsystem.
 */

#ifndef RECPERF_RESILIENCE_SDC_HH
#define RECPERF_RESILIENCE_SDC_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stats.hh"
#include "resilience/corruption.hh"
#include "resilience/fault_injector.hh"
#include "trace/id_generator.hh"

namespace recperf {

namespace obs {
class Tracer;
}

/** Knobs of the detection + recovery ladder. */
struct SdcOptions
{
    /** Background scrubber full-sweep period; 0 disables scrubbing. */
    double scrubIntervalSeconds = 0.0;

    /** Fraction of lookup batches verified inline, (0,1]; 0 off. */
    double inlineSampleRate = 0.0;

    /** NaN/inf/range + checksum-on-read guards at the aggregation
     *  boundary: no corrupted response escapes, at a per-response
     *  verification cost. */
    bool outputGuards = false;

    /** Period of canary queries with golden outputs; 0 disables. */
    double canaryIntervalSeconds = 0.0;

    /** Parameter-store round trip of one row re-fetch. */
    double repairRttSeconds = 200e-6;

    /** Parameter-store transfer bandwidth (serialized channel). */
    double repairBandwidthGBps = 1.0;

    /** Quarantined-row density that escalates a replica to full
     *  drain + rehydrate; 0 disables escalation. */
    double drainDensity = 0.0;

    /** Response quality while serving around quarantined rows;
     *  <= 0 resolves to the brownout stale-embeddings score. */
    double quarantineQuality = 0.0;

    /** Zipf skew of the modeled lookup row draws; 0 = uniform. */
    double lookupZipfAlpha = 1.05;

    /** True when any detection/recovery mechanism is on. */
    bool anyDefense() const
    {
        return scrubIntervalSeconds > 0.0 || inlineSampleRate > 0.0 ||
            outputGuards || canaryIntervalSeconds > 0.0;
    }

    /** Empty when sane, else a description (CLI rejects early). */
    std::string validate() const;
};

/** How a corruption event was detected. */
enum class DetectionChannel
{
    None = -1,
    Scrub = 0,
    Inline = 1,
    Guard = 2,
    Canary = 3,
};

/** Aggregate counters of one run's SDC activity. */
struct SdcStats
{
    bool active = false; ///< gates the integrity.* metrics export

    uint64_t injectedRows = 0; ///< embedding-row corruption events
    uint64_t injectedFc = 0;   ///< FC-weight corruption events
    uint64_t detected = 0;     ///< events detected, any channel
    uint64_t detectedScrub = 0;
    uint64_t detectedInline = 0;
    uint64_t detectedGuard = 0;
    uint64_t detectedCanary = 0;
    uint64_t clearedRows = 0;     ///< wiped by a repair before detection
    uint64_t quarantinedRows = 0; ///< quarantine entries created
    uint64_t repairs = 0;         ///< async row re-fetches completed
    uint64_t rehydrates = 0;      ///< replica drain+rehydrate cycles
    uint64_t rowsRehydrated = 0;  ///< rows wiped clean by rehydrates
    uint64_t corruptedServed = 0; ///< escapes: corrupted responses out
    uint64_t degradedServed = 0;  ///< responses touching quarantine
    uint64_t canaryRuns = 0;
    uint64_t scrubSweeps = 0; ///< completed full sweeps, all replicas

    double verifySeconds = 0.0; ///< inline + guard verification time
    double repairSeconds = 0.0; ///< transfer-channel busy time
    double qualitySum = 0.0;    ///< summed over completed inferences

    /** Injection-to-detection latency of detected events. */
    LatencySample detectionLatency;
};

/**
 * The per-run controller driven by ShardedInference::run.
 *
 * Call order per inference: beginInference (returns maintenance time
 * to add to the clock), onShardLookup per resolved shard,
 * then endInference on success or dropInference on cancel/failure.
 * finish() runs the scrubber one final period so every still-resident
 * corruption is detected within its bound.
 */
class SdcController
{
  public:
    /**
     * @param injector draws the corruption events; must outlive the
     *        controller and have the same topology armed.
     * @param batch dense batch size of one inference.
     * @param lookups_per_table pooled lookups per table per sample.
     */
    SdcController(const SdcOptions &options,
                  const CorruptionTopology &topology,
                  FaultInjector *injector, uint64_t lookup_seed,
                  int64_t batch, int64_t lookups_per_table);

    /** Wire measured/derived run constants after warm-up. */
    void calibrate(double fresh_p50_seconds, double stream_gbps);

    /** Route trace emission; @p lane_base is the first free virtual
     *  lane (one scrub lane per replica node + one repair lane). */
    void setTracer(obs::Tracer *tracer, int lane_base);

    /** Number of virtual trace lanes the controller emits on. */
    int traceLanes() const
    {
        return static_cast<int>(nodes_.size()) + 1;
    }

    /**
     * Advance injection, scrubbing, repair completion, canaries and
     * drain escalation to @p now; returns maintenance seconds (canary
     * executions) the caller adds to the virtual clock.
     */
    double beginInference(double now);

    /** Service-time multiplier (>= 1) while the scrubber competes for
     *  table bandwidth. */
    double serviceSlowdown() const { return scrub_slowdown_; }

    /** True while the replica is drained for rehydration. */
    bool replicaDrained(uint32_t shard, uint32_t replica,
                        double now) const;

    /**
     * Model one resolved shard lookup batch served by @p replica;
     * returns inline-verification seconds to add to the shard's
     * service time.
     */
    double onShardLookup(uint32_t shard, uint32_t replica, double now);

    /** Outcome of the aggregation boundary for one inference. */
    struct Boundary
    {
        double extraSeconds = 0.0; ///< guard checks + sync FC repair
        bool servedCorrupted = false;
        bool servedDegraded = false;
        double quality = 1.0;
    };

    /** Close out a completed inference at @p now (post-aggregation). */
    Boundary endInference(double now);

    /** A cancelled/failed inference serves nothing: discard scratch. */
    void dropInference();

    /** Run the scrubber one final period and drain the repair queue so
     *  every resident corruption resolves; call once, after the loop. */
    void finish(double now);

    const SdcStats &stats() const { return stats_; }

    /** Per-event records (injection + detection times), for studies. */
    struct EventRecord
    {
        CorruptionEvent event;
        double detectTime = -1.0; ///< < 0: never detected
        DetectionChannel channel = DetectionChannel::None;
        bool cleared = false; ///< wiped undetected by a rehydrate
    };

    const std::vector<EventRecord> &events() const { return events_; }

  private:
    struct NodeState
    {
        /** row key -> indices into events_ (undetected corruption). */
        std::unordered_map<int64_t, std::vector<size_t>> corrupted;
        /** row key -> repair completion time (quarantined). */
        std::unordered_map<int64_t, double> quarantined;
        double scrubPos = 0.0;     ///< sweep position in [0, shardRows)
        double scrubTime = 0.0;    ///< clock of the last sweep advance
        double sweepStart = 0.0;   ///< start time of the current sweep
        double drainUntil = -1.0;  ///< > now while rehydrating
        uint64_t batches = 0;      ///< lookup batches (inline sampling)
    };

    int64_t rowKey(int32_t table, int64_t row) const;
    NodeState &node(uint32_t shard, uint32_t replica);
    void applyEvent(const CorruptionEvent &ev, size_t index);
    void detectRow(NodeState &state, uint32_t node_index, int64_t key,
                   double now, DetectionChannel channel);
    double detectFc(double now, DetectionChannel channel);
    void scrubTo(double now);
    void completeRepairs(double now);
    double runCanary(double now);
    void checkDrain(double now);
    double rowBytes() const;

    SdcOptions options_;
    CorruptionTopology topology_;
    FaultInjector *injector_;
    int64_t batch_;
    int64_t lookups_per_table_;
    uint64_t every_n_; ///< inline: verify every Nth batch per node

    double fresh_p50_ = 0.0;
    double stream_gbps_ = 25.0;
    double scrub_slowdown_ = 1.0;

    obs::Tracer *tracer_ = nullptr;
    int lane_base_ = -1;

    std::vector<NodeState> nodes_; ///< [shard * replicas + replica]
    /** Lookup row generators, [shard][local table]; empty rows vector
     *  when lookupZipfAlpha == 0 (uniform draws from rng_). */
    std::vector<std::vector<ZipfGen>> lookup_gens_;
    std::vector<std::vector<ZipfGen>> canary_gens_;
    Rng rng_; ///< uniform lookup draws
    std::vector<std::vector<int64_t>> table_offsets_; ///< per shard

    /** FC corruption: row -> indices into events_ (undetected). */
    std::unordered_map<int64_t, std::vector<size_t>> fc_corrupted_;

    double channel_free_ = 0.0; ///< serialized repair-channel horizon
    double next_canary_ = -1.0;

    /** Per-inference scratch: what this inference touched. */
    struct Scratch
    {
        bool open = false;
        bool touched_quarantined = false;
        /** (node index, row key) of corrupted-undetected touches. */
        std::vector<std::pair<uint32_t, int64_t>> poisoned;
        int64_t draws = 0; ///< modeled row reads this inference
    } scratch_;

    std::vector<EventRecord> events_;
    SdcStats stats_;
};

} // namespace recperf

#endif // RECPERF_RESILIENCE_SDC_HH
