/**
 * @file
 * Per-replica health tracking for failure-aware routing.
 *
 * The replica router needs a cheap, continuously updated estimate of
 * how each replica is doing. HealthTracker folds two signals:
 *
 *  - an EWMA of observed service latencies (live traffic and probes
 *    alike), so a replica paying its post-recovery warm-up penalty or
 *    sitting in a straggler storm scores worse than a healthy peer;
 *  - consecutive-error counts (refused connections, timeouts), the
 *    input of the circuit breaker's trip decision.
 *
 * Trackers are plain accumulators driven by the simulation clock; all
 * determinism comes from the callers.
 */

#ifndef RECPERF_RESILIENCE_HEALTH_HH
#define RECPERF_RESILIENCE_HEALTH_HH

#include <cstdint>

namespace recperf {

/** Knobs of the per-replica health estimate. */
struct HealthOptions
{
    /** Weight of the newest latency sample in the EWMA. */
    double ewmaAlpha = 0.2;
};

/** EWMA latency + error-streak accumulator for one replica. */
class HealthTracker
{
  public:
    explicit HealthTracker(const HealthOptions &options = {});

    /** Fold a completed request's latency observed at @p now. */
    void recordSuccess(double latency_seconds, double now);

    /** Fold a refused / timed-out request observed at @p now. */
    void recordError(double now);

    /** Smoothed service latency; 0 until the first success. */
    double ewmaSeconds() const { return ewma_; }

    /** Errors since the last success. */
    int consecutiveErrors() const { return consecutive_errors_; }

    uint64_t successes() const { return successes_; }
    uint64_t errors() const { return errors_; }

    /** Time of the most recent observation (success or error). */
    double lastEventTime() const { return last_event_; }

    /**
     * Routing score: lower is healthier. Replicas without history yet
     * score @p fallback_seconds so they are neither shunned nor
     * preferred before their first observation.
     */
    double score(double fallback_seconds) const
    {
        return successes_ > 0 ? ewma_ : fallback_seconds;
    }

  private:
    HealthOptions options_;
    double ewma_ = 0.0;
    double last_event_ = 0.0;
    int consecutive_errors_ = 0;
    uint64_t successes_ = 0;
    uint64_t errors_ = 0;
};

} // namespace recperf

#endif // RECPERF_RESILIENCE_HEALTH_HH
