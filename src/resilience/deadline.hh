/**
 * @file
 * End-to-end deadline budgets for the request lifecycle.
 *
 * A Deadline is issued when a request enters the system and travels
 * with it: queue wait, batch assembly, shard fan-out, replica routing,
 * retries, and hedges all decrement the same budget. Policies consult
 * `remaining(now)` instead of fixed values — retry/hedge timeouts are
 * clamped to the budget, replicas whose EWMA latency exceeds it are
 * skipped, and an expired budget cancels the in-flight work instead of
 * letting it complete late (the paper's SLA targets make a late answer
 * worthless; see DESIGN.md §13).
 *
 * A zero (or negative) budget disables the deadline: `remaining()` is
 * +infinity and nothing expires, so legacy configurations behave
 * bit-identically.
 */

#ifndef RECPERF_RESILIENCE_DEADLINE_HH
#define RECPERF_RESILIENCE_DEADLINE_HH

#include <string>

namespace recperf {

/** Per-request latency budget anchored at an issue timestamp. */
struct Deadline
{
    /** Virtual time the request entered the system. */
    double startSeconds = 0.0;

    /** Total end-to-end budget; <= 0 disables the deadline. */
    double budgetSeconds = 0.0;

    bool enabled() const { return budgetSeconds > 0.0; }

    /** Absolute expiry instant (meaningless when disabled). */
    double deadlineAt() const { return startSeconds + budgetSeconds; }

    /**
     * Budget left at virtual time @p now, clamped to >= 0 so callers
     * never see a negative timeout; +infinity when disabled.
     */
    double remaining(double now) const;

    /** True once the budget is exhausted (never for a disabled one). */
    bool expired(double now) const
    {
        return enabled() && now >= deadlineAt();
    }

    /**
     * Effective timeout for an attempt issued at @p now: the fixed
     * policy timeout (0 = unbounded) clamped to the remaining budget.
     * Returns +infinity when neither bound applies, so callers can
     * compare `service > clampTimeout(...)` without special-casing.
     */
    double clampTimeout(double fixedTimeoutSeconds, double now) const;
};

/**
 * CLI-grade validation of a deadline budget in seconds: empty string
 * when sane (zero disables), a description of the problem otherwise.
 */
std::string validateDeadlineSeconds(double budgetSeconds);

} // namespace recperf

#endif // RECPERF_RESILIENCE_DEADLINE_HH
