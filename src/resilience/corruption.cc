#include "resilience/corruption.hh"

#include <cstdio>
#include <numeric>

#include "core/logging.hh"

namespace recperf {

std::string
CorruptionOptions::validate() const
{
    if (ratePerSec < 0.0)
        return strprintf("corruption rate cannot be negative (got %g/s)",
                         ratePerSec);
    if (zipfAlpha < 0.0)
        return strprintf("corruption zipf skew cannot be negative "
                         "(got %g)", zipfAlpha);
    if (multiBitFraction < 0.0 || multiBitFraction > 1.0)
        return strprintf("multi-bit fraction %g out of [0,1]",
                         multiBitFraction);
    if (stuckRowFraction < 0.0 || stuckRowFraction > 1.0)
        return strprintf("stuck-row fraction %g out of [0,1]",
                         stuckRowFraction);
    if (multiBitFraction + stuckRowFraction > 1.0)
        return strprintf("multi-bit + stuck-row fractions exceed 1 "
                         "(%g + %g)", multiBitFraction, stuckRowFraction);
    if (fcFraction < 0.0 || fcFraction > 1.0)
        return strprintf("FC fraction %g out of [0,1]", fcFraction);
    return "";
}

int64_t
CorruptionTopology::shardRows(uint32_t shard) const
{
    RP_ASSERT(shard < tableRows.size(), "shard %u out of topology",
              shard);
    const std::vector<int64_t> &tables = tableRows[shard];
    return std::accumulate(tables.begin(), tables.end(),
                           static_cast<int64_t>(0));
}

void
FaultLog::recordCorruption(const CorruptionEvent &event)
{
    lines_.push_back(strprintf(
        "{\"kind\":\"%s\",\"t\":%.9f,\"shard\":%u,\"replica\":%u,"
        "\"table\":%d,\"row\":%lld,\"bit\":%llu}",
        corruptionKindName(event.kind), event.time, event.shard,
        event.replica, event.table, static_cast<long long>(event.row),
        static_cast<unsigned long long>(event.bit)));
    ++corruptions_;
}

void
FaultLog::recordNodeTransition(uint32_t node, bool up, double time)
{
    lines_.push_back(strprintf(
        "{\"kind\":\"%s\",\"t\":%.9f,\"node\":%u}",
        up ? "node_up" : "node_down", time, node));
}

void
FaultLog::recordSpike(double time, double duration, double factor)
{
    lines_.push_back(strprintf(
        "{\"kind\":\"load_spike\",\"t\":%.9f,\"duration\":%.9f,"
        "\"factor\":%g}",
        time, duration, factor));
}

std::string
FaultLog::toJsonl() const
{
    std::string out;
    for (const std::string &line : lines_) {
        out += line;
        out += '\n';
    }
    return out;
}

void
FaultLog::writeFile(const std::string &path) const
{
    FILE *f = std::fopen(path.c_str(), "w");
    RP_ASSERT(f != nullptr, "cannot open %s for writing", path.c_str());
    std::string body = toJsonl();
    size_t written = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    RP_ASSERT(written == body.size(), "short write to %s", path.c_str());
}

void
FaultLog::clear()
{
    lines_.clear();
    corruptions_ = 0;
}

} // namespace recperf
