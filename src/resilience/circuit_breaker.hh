/**
 * @file
 * Per-replica circuit breaker (closed -> open -> half-open).
 *
 * A replica that keeps refusing or timing out should stop receiving
 * traffic before it burns the whole retry budget of every inference
 * that routes to it. The breaker trips open after a streak of
 * consecutive errors, rejects requests for a cooldown window, then
 * moves to half-open where a seeded coin admits a fraction of requests
 * as probes: enough probe successes re-close the breaker, any probe
 * failure re-opens it (with the cooldown restarted). The probe coin is
 * the only randomness and draws from a per-breaker seeded Rng, so a
 * fixed seed yields a bit-identical admission sequence.
 */

#ifndef RECPERF_RESILIENCE_CIRCUIT_BREAKER_HH
#define RECPERF_RESILIENCE_CIRCUIT_BREAKER_HH

#include <cstdint>
#include <string>

#include "core/rng.hh"

namespace recperf {

/** Breaker state machine positions. */
enum class BreakerState
{
    Closed,   ///< normal operation, errors counted
    Open,     ///< rejecting everything until the cooldown elapses
    HalfOpen, ///< admitting seeded probes to test recovery
};

/** Human-readable state name. */
const char *breakerStateName(BreakerState state);

/** Circuit-breaker knobs (shared by every replica's breaker). */
struct BreakerOptions
{
    /** Consecutive errors that trip the breaker open. */
    int errorThreshold = 3;

    /** Cooldown before an open breaker turns half-open. */
    double openSeconds = 0.5e-3;

    /** Probability a half-open request is admitted as a probe. */
    double probeAdmitProb = 0.7;

    /** Consecutive probe successes that re-close the breaker. */
    int closeAfterProbes = 2;

    /** Seed of the probe-admission coin. */
    uint64_t seed = 2020;

    /** Empty when the options are sane, else a description. */
    std::string validate() const;
};

/** One replica's trip/cooldown/probe state machine. */
class CircuitBreaker
{
  public:
    /** @param salt mixed into the seed so replicas draw independent
     *         probe-admission streams. */
    CircuitBreaker(const BreakerOptions &options, uint64_t salt);

    /**
     * Whether a request may be sent at @p now. Advances open ->
     * half-open when the cooldown has elapsed; in half-open, flips the
     * seeded probe coin (a rejection leaves the state unchanged).
     */
    bool allowRequest(double now);

    /** Fold the outcome of an admitted request. */
    void onSuccess(double now);
    void onFailure(double now);

    BreakerState state() const { return state_; }

    /** Closed -> open (or half-open -> open) transitions so far. */
    uint64_t timesOpened() const { return times_opened_; }

    /** Half-open -> closed transitions so far. */
    uint64_t timesClosed() const { return times_closed_; }

    /** Requests admitted while half-open. */
    uint64_t probesAdmitted() const { return probes_admitted_; }

    /** Requests rejected while open or half-open. */
    uint64_t rejections() const { return rejections_; }

  private:
    void trip(double now);

    BreakerOptions options_;
    Rng probe_rng_;
    BreakerState state_ = BreakerState::Closed;
    double open_until_ = 0.0;
    int consecutive_errors_ = 0;
    int probe_successes_ = 0;
    uint64_t times_opened_ = 0;
    uint64_t times_closed_ = 0;
    uint64_t probes_admitted_ = 0;
    uint64_t rejections_ = 0;
};

} // namespace recperf

#endif // RECPERF_RESILIENCE_CIRCUIT_BREAKER_HH
