#include "resilience/sdc.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "obs/trace.hh"

namespace recperf {

std::string
SdcOptions::validate() const
{
    if (scrubIntervalSeconds < 0.0)
        return strprintf("scrub interval cannot be negative (got %g s)",
                         scrubIntervalSeconds);
    if (inlineSampleRate < 0.0 || inlineSampleRate > 1.0)
        return strprintf("inline sampling rate %g outside (0,1]",
                         inlineSampleRate);
    if (canaryIntervalSeconds < 0.0)
        return strprintf("canary interval cannot be negative (got %g s)",
                         canaryIntervalSeconds);
    if (repairRttSeconds < 0.0)
        return strprintf("repair RTT cannot be negative (got %g s)",
                         repairRttSeconds);
    if (repairBandwidthGBps <= 0.0)
        return strprintf("repair bandwidth must be positive (got %g "
                         "GB/s)", repairBandwidthGBps);
    if (drainDensity < 0.0 || drainDensity > 1.0)
        return strprintf("drain density %g out of [0,1]", drainDensity);
    if (quarantineQuality > 1.0)
        return strprintf("quarantine quality %g above 1",
                         quarantineQuality);
    if (lookupZipfAlpha < 0.0)
        return strprintf("lookup zipf skew cannot be negative (got %g)",
                         lookupZipfAlpha);
    return "";
}

SdcController::SdcController(const SdcOptions &options,
                             const CorruptionTopology &topology,
                             FaultInjector *injector,
                             uint64_t lookup_seed, int64_t batch,
                             int64_t lookups_per_table)
    : options_(options), topology_(topology), injector_(injector),
      batch_(batch), lookups_per_table_(lookups_per_table),
      rng_(lookup_seed ^ 0x10de7ab1e5ULL)
{
    std::string err = options_.validate();
    RP_ASSERT(err.empty(), "%s", err.c_str());
    RP_ASSERT(!topology_.empty(), "SDC controller needs a topology");
    RP_ASSERT(injector_ != nullptr, "SDC controller needs an injector");
    RP_ASSERT(options_.quarantineQuality > 0.0,
              "quarantine quality must be resolved (> 0) before "
              "construction");
    nodes_.resize(static_cast<size_t>(topology_.shards) *
                  topology_.replicas);
    every_n_ = options_.inlineSampleRate > 0.0
        ? std::max<uint64_t>(
              1, static_cast<uint64_t>(
                     std::llround(1.0 / options_.inlineSampleRate)))
        : 0;

    Rng lookup_master(lookup_seed ^ 0x100cab5eedULL);
    Rng canary_master(lookup_seed ^ 0xca4a475eedULL);
    for (uint32_t s = 0; s < topology_.shards; ++s) {
        std::vector<int64_t> offsets;
        int64_t off = 0;
        for (int64_t rows : topology_.tableRows[s]) {
            offsets.push_back(off);
            off += rows;
        }
        table_offsets_.push_back(std::move(offsets));
        if (options_.lookupZipfAlpha > 0.0) {
            std::vector<ZipfGen> gens, cgens;
            for (int64_t rows : topology_.tableRows[s]) {
                gens.emplace_back(rows, options_.lookupZipfAlpha,
                                  lookup_master.split());
                cgens.emplace_back(rows, options_.lookupZipfAlpha,
                                   canary_master.split());
            }
            lookup_gens_.push_back(std::move(gens));
            canary_gens_.push_back(std::move(cgens));
        }
    }
    stats_.active = true;
}

void
SdcController::calibrate(double fresh_p50_seconds, double stream_gbps)
{
    fresh_p50_ = fresh_p50_seconds;
    stream_gbps_ = stream_gbps;
    if (options_.scrubIntervalSeconds > 0.0) {
        int64_t widest = 0;
        for (uint32_t s = 0; s < topology_.shards; ++s)
            widest = std::max(widest, topology_.shardRows(s));
        // While sweeping (i.e. always, the scrubber is continuous) the
        // checksum re-reads steal table bandwidth from the gathers.
        double scrub_bps = static_cast<double>(widest) * rowBytes() /
            options_.scrubIntervalSeconds;
        scrub_slowdown_ = 1.0 + scrub_bps / (stream_gbps_ * 1e9);
    }
}

void
SdcController::setTracer(obs::Tracer *tracer, int lane_base)
{
    tracer_ = tracer;
    lane_base_ = lane_base;
    if (tracer_ == nullptr)
        return;
    for (uint32_t s = 0; s < topology_.shards; ++s)
        for (uint32_t r = 0; r < topology_.replicas; ++r)
            tracer_->nameLane(
                static_cast<uint32_t>(lane_base_) +
                    s * topology_.replicas + r,
                topology_.replicas > 1
                    ? strprintf("scrub s%u r%u", s, r)
                    : strprintf("scrub s%u", s));
    tracer_->nameLane(
        static_cast<uint32_t>(lane_base_ + nodes_.size()),
        "param-store");
}

int64_t
SdcController::rowKey(int32_t table, int64_t row) const
{
    return (static_cast<int64_t>(table) << 40) | row;
}

SdcController::NodeState &
SdcController::node(uint32_t shard, uint32_t replica)
{
    return nodes_[static_cast<size_t>(shard) * topology_.replicas +
                  replica];
}

double
SdcController::rowBytes() const
{
    return static_cast<double>(topology_.embDim) * sizeof(float);
}

void
SdcController::applyEvent(const CorruptionEvent &ev, size_t index)
{
    if (ev.table < 0) {
        ++stats_.injectedFc;
        fc_corrupted_[ev.row].push_back(index);
    } else {
        ++stats_.injectedRows;
        NodeState &st = node(ev.shard, ev.replica);
        if (st.drainUntil > ev.time) {
            // The replica is mid-rehydrate; the fresh parameter copy
            // overwrites the flip before it can ever be read.
            events_[index].cleared = true;
            ++stats_.clearedRows;
            return;
        }
        st.corrupted[rowKey(ev.table, ev.row)].push_back(index);
    }
    if (tracer_ != nullptr) {
        uint32_t lane = ev.table < 0
            ? static_cast<uint32_t>(lane_base_ + nodes_.size())
            : static_cast<uint32_t>(lane_base_) +
                ev.shard * topology_.replicas + ev.replica;
        tracer_->instant("integrity", "injected", ev.time, lane,
                         {{"kind", corruptionKindName(ev.kind)},
                          {"table", strprintf("%d", ev.table)},
                          {"row", strprintf("%lld",
                                            static_cast<long long>(
                                                ev.row))}});
    }
}

void
SdcController::detectRow(NodeState &state, uint32_t node_index,
                         int64_t key, double now,
                         DetectionChannel channel)
{
    auto it = state.corrupted.find(key);
    RP_ASSERT(it != state.corrupted.end(), "detecting a clean row");
    for (size_t index : it->second) {
        EventRecord &rec = events_[index];
        rec.detectTime = now;
        rec.channel = channel;
        ++stats_.detected;
        switch (channel) {
        case DetectionChannel::Scrub:
            ++stats_.detectedScrub;
            break;
        case DetectionChannel::Inline:
            ++stats_.detectedInline;
            break;
        case DetectionChannel::Guard:
            ++stats_.detectedGuard;
            break;
        case DetectionChannel::Canary:
            ++stats_.detectedCanary;
            break;
        case DetectionChannel::None:
            break;
        }
        stats_.detectionLatency.add(now - rec.event.time);
    }
    state.corrupted.erase(it);

    if (tracer_ != nullptr) {
        tracer_->instant("integrity", "detected", now,
                         static_cast<uint32_t>(lane_base_) + node_index,
                         {{"channel",
                           strprintf("%d", static_cast<int>(channel))}});
    }
    // A row re-corrupted while already awaiting its re-fetch needs no
    // second transfer: the pending fresh copy overwrites this flip too.
    if (state.quarantined.count(key) != 0)
        return;

    // Quarantine the row (it serves stale/zero from here) and queue
    // the re-fetch on the serialized parameter-store channel.
    double start = std::max(now, channel_free_);
    double done = start + options_.repairRttSeconds +
        rowBytes() / (options_.repairBandwidthGBps * 1e9);
    channel_free_ = done;
    stats_.repairSeconds += done - start;
    state.quarantined[key] = done;
    ++stats_.quarantinedRows;
    if (tracer_ != nullptr) {
        tracer_->span("integrity", "repair", start, done,
                      static_cast<uint32_t>(lane_base_ + nodes_.size()));
    }
}

double
SdcController::detectFc(double now, DetectionChannel channel)
{
    if (fc_corrupted_.empty())
        return 0.0;
    double cost = 0.0;
    double fc_bytes = static_cast<double>(topology_.fcRowBits) / 8.0;
    for (const auto &entry : fc_corrupted_) {
        for (size_t index : entry.second) {
            EventRecord &rec = events_[index];
            rec.detectTime = now;
            rec.channel = channel;
            ++stats_.detected;
            if (channel == DetectionChannel::Guard)
                ++stats_.detectedGuard;
            else
                ++stats_.detectedCanary;
            stats_.detectionLatency.add(now - rec.event.time);
        }
        // FC weights feed every response, so the re-fetch is
        // synchronous: the caller eats the transfer before answering.
        cost += options_.repairRttSeconds +
            fc_bytes / (options_.repairBandwidthGBps * 1e9);
        ++stats_.repairs;
    }
    stats_.repairSeconds += cost;
    fc_corrupted_.clear();
    return cost;
}

void
SdcController::scrubTo(double now)
{
    if (options_.scrubIntervalSeconds <= 0.0)
        return;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        NodeState &st = nodes_[i];
        if (st.drainUntil > now) {
            st.scrubTime = now; // scrubber idles while rehydrating
            continue;
        }
        if (st.drainUntil > st.scrubTime)
            st.scrubTime = st.drainUntil;
        if (now <= st.scrubTime)
            continue;
        uint32_t shard = static_cast<uint32_t>(i) / topology_.replicas;
        double total = static_cast<double>(topology_.shardRows(shard));
        double rate = total / options_.scrubIntervalSeconds;
        double advance = (now - st.scrubTime) * rate;
        double start_pos = st.scrubPos;
        double start_time = st.scrubTime;

        // Detect every corrupted row whose linear position the sweep
        // crosses; detection time is when the sweep reaches it.
        std::vector<std::pair<int64_t, double>> hits;
        for (const auto &entry : st.corrupted) {
            int32_t table = static_cast<int32_t>(entry.first >> 40);
            int64_t row = entry.first & ((1LL << 40) - 1);
            double pos = static_cast<double>(
                table_offsets_[shard][static_cast<size_t>(table)] +
                row);
            double ahead = pos - start_pos;
            if (ahead < 0.0)
                ahead += total;
            if (ahead < advance)
                hits.emplace_back(entry.first,
                                  start_time + ahead / rate);
        }
        std::sort(hits.begin(), hits.end(),
                  [](const auto &a, const auto &b) {
                      return a.second < b.second;
                  });
        for (const auto &hit : hits)
            detectRow(st, static_cast<uint32_t>(i), hit.first,
                      hit.second, DetectionChannel::Scrub);

        // Completed full sweeps become trace spans on the node's lane.
        double swept = start_pos + advance;
        while (swept >= total) {
            double cross = start_time + (total - start_pos) / rate;
            ++stats_.scrubSweeps;
            if (tracer_ != nullptr)
                tracer_->span("integrity", "scrub sweep", st.sweepStart,
                              cross,
                              static_cast<uint32_t>(lane_base_) +
                                  static_cast<uint32_t>(i));
            st.sweepStart = cross;
            swept -= total;
            start_pos = 0.0;
            start_time = cross;
        }
        st.scrubPos = swept;
        st.scrubTime = now;
    }
}

void
SdcController::completeRepairs(double now)
{
    for (NodeState &st : nodes_) {
        for (auto it = st.quarantined.begin();
             it != st.quarantined.end();) {
            if (it->second > now) {
                ++it;
                continue;
            }
            // The fresh copy also wipes any re-corruption that landed
            // while the row sat in quarantine.
            auto dirty = st.corrupted.find(it->first);
            if (dirty != st.corrupted.end()) {
                for (size_t index : dirty->second) {
                    events_[index].cleared = true;
                    ++stats_.clearedRows;
                }
                st.corrupted.erase(dirty);
            }
            ++stats_.repairs;
            it = st.quarantined.erase(it);
        }
    }
}

double
SdcController::runCanary(double now)
{
    ++stats_.canaryRuns;
    for (uint32_t s = 0; s < topology_.shards; ++s) {
        const std::vector<int64_t> &tables = topology_.tableRows[s];
        for (size_t t = 0; t < tables.size(); ++t) {
            for (int64_t j = 0; j < lookups_per_table_; ++j) {
                int64_t row = options_.lookupZipfAlpha > 0.0
                    ? canary_gens_[s][t].next()
                    : static_cast<int64_t>(rng_.nextBelow(
                          static_cast<uint64_t>(tables[t])));
                int64_t key = rowKey(static_cast<int32_t>(t), row);
                // The canary's golden-output compare flags the row on
                // whichever replica still holds the flip.
                for (uint32_t r = 0; r < topology_.replicas; ++r) {
                    NodeState &st = node(s, r);
                    if (st.corrupted.count(key) != 0)
                        detectRow(st, s * topology_.replicas + r, key,
                                  now, DetectionChannel::Canary);
                }
            }
        }
    }
    return detectFc(now, DetectionChannel::Canary);
}

void
SdcController::checkDrain(double now)
{
    if (options_.drainDensity <= 0.0)
        return;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        NodeState &st = nodes_[i];
        if (st.drainUntil > now)
            continue;
        uint32_t shard = static_cast<uint32_t>(i) / topology_.replicas;
        double total = static_cast<double>(topology_.shardRows(shard));
        double dirty = static_cast<double>(st.corrupted.size() +
                                           st.quarantined.size());
        if (dirty / total < options_.drainDensity)
            continue;
        // Escalate: take the replica out of rotation and stream a
        // fresh copy of its tables from the parameter store. The
        // serving loop sees the replica down, fails over, and the
        // ReplicaSet warm-up path covers the cold return.
        double rehydrate = options_.repairRttSeconds +
            total * rowBytes() /
                (options_.repairBandwidthGBps * 1e9);
        st.drainUntil = now + rehydrate;
        stats_.rowsRehydrated += st.corrupted.size() +
            st.quarantined.size();
        for (const auto &entry : st.corrupted)
            for (size_t index : entry.second) {
                events_[index].cleared = true;
                ++stats_.clearedRows;
            }
        st.corrupted.clear();
        st.quarantined.clear();
        ++stats_.rehydrates;
        if (tracer_ != nullptr)
            tracer_->instant(
                "integrity", "rehydrate", now,
                static_cast<uint32_t>(lane_base_) +
                    static_cast<uint32_t>(i),
                {{"until", strprintf("%.6f", st.drainUntil)}});
    }
}

bool
SdcController::replicaDrained(uint32_t shard, uint32_t replica,
                              double now) const
{
    const NodeState &st =
        nodes_[static_cast<size_t>(shard) * topology_.replicas +
               replica];
    return st.drainUntil > now;
}

double
SdcController::beginInference(double now)
{
    for (const CorruptionEvent &ev :
         injector_->drawCorruptionsUpTo(now)) {
        events_.push_back(EventRecord{ev, -1.0, DetectionChannel::None,
                                      false});
        applyEvent(ev, events_.size() - 1);
    }
    scrubTo(now);
    completeRepairs(now);
    double maintenance = 0.0;
    if (options_.canaryIntervalSeconds > 0.0) {
        if (next_canary_ < 0.0)
            next_canary_ = options_.canaryIntervalSeconds;
        while (next_canary_ <= now) {
            // One synthetic query's worth of serving capacity per
            // canary (plus any synchronous FC re-fetch it triggers):
            // a goodput tax, not added latency.
            maintenance += fresh_p50_ + runCanary(next_canary_);
            next_canary_ += options_.canaryIntervalSeconds;
        }
    }
    checkDrain(now);
    scratch_ = Scratch{};
    scratch_.open = true;
    return maintenance;
}

double
SdcController::onShardLookup(uint32_t shard, uint32_t replica,
                             double now)
{
    RP_ASSERT(scratch_.open, "onShardLookup outside an inference");
    NodeState &st = node(shard, replica);
    ++st.batches;
    bool sampled = every_n_ > 0 && st.batches % every_n_ == 0;
    const std::vector<int64_t> &tables = topology_.tableRows[shard];
    int64_t per_table = batch_ * lookups_per_table_;
    scratch_.draws += per_table * static_cast<int64_t>(tables.size());

    // Clean replica and no verification due: the drawn rows could not
    // change anything, so skip the draw work entirely.
    if (!sampled && st.corrupted.empty() && st.quarantined.empty())
        return 0.0;

    uint32_t node_index = shard * topology_.replicas + replica;
    std::vector<int64_t> touched;
    if (sampled)
        touched.reserve(static_cast<size_t>(
            per_table * static_cast<int64_t>(tables.size())));
    for (size_t t = 0; t < tables.size(); ++t) {
        for (int64_t j = 0; j < per_table; ++j) {
            int64_t row = options_.lookupZipfAlpha > 0.0
                ? lookup_gens_[shard][t].next()
                : static_cast<int64_t>(rng_.nextBelow(
                      static_cast<uint64_t>(tables[t])));
            int64_t key = rowKey(static_cast<int32_t>(t), row);
            if (sampled)
                touched.push_back(key);
            if (st.quarantined.count(key) != 0) {
                scratch_.touched_quarantined = true;
            } else if (st.corrupted.count(key) != 0) {
                if (sampled) {
                    // Inline verification runs ahead of the gather:
                    // the batch serves the quarantine fallback instead
                    // of the flipped bytes.
                    detectRow(st, node_index, key, now,
                              DetectionChannel::Inline);
                    scratch_.touched_quarantined = true;
                } else {
                    scratch_.poisoned.emplace_back(node_index, key);
                }
            }
        }
    }
    if (!sampled)
        return 0.0;
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    double verify = static_cast<double>(touched.size()) * rowBytes() /
        (stream_gbps_ * 1e9);
    stats_.verifySeconds += verify;
    return verify;
}

SdcController::Boundary
SdcController::endInference(double now)
{
    RP_ASSERT(scratch_.open, "endInference outside an inference");
    Boundary out;
    std::sort(scratch_.poisoned.begin(), scratch_.poisoned.end());
    scratch_.poisoned.erase(std::unique(scratch_.poisoned.begin(),
                                        scratch_.poisoned.end()),
                            scratch_.poisoned.end());
    bool fc_dirty = !fc_corrupted_.empty();
    if (options_.outputGuards) {
        // Envelope + checksum-on-read over the pooled outputs: one
        // fp32 read per gathered row's contribution.
        double guard = static_cast<double>(scratch_.draws) *
            sizeof(float) / (stream_gbps_ * 1e9);
        stats_.verifySeconds += guard;
        out.extraSeconds += guard;
        for (const auto &hit : scratch_.poisoned) {
            NodeState &st = nodes_[hit.first];
            if (st.corrupted.count(hit.second) != 0) {
                detectRow(st, hit.first, hit.second, now,
                          DetectionChannel::Guard);
                out.servedDegraded = true;
            }
        }
        if (fc_dirty) {
            out.extraSeconds += detectFc(now, DetectionChannel::Guard);
            out.servedDegraded = true;
        }
    } else if (!scratch_.poisoned.empty() || fc_dirty) {
        out.servedCorrupted = true;
        ++stats_.corruptedServed;
        if (tracer_ != nullptr)
            tracer_->instant(
                "integrity", "escape", now,
                static_cast<uint32_t>(lane_base_ + nodes_.size()));
    }
    if (scratch_.touched_quarantined)
        out.servedDegraded = true;
    if (out.servedCorrupted)
        out.quality = 0.0;
    else if (out.servedDegraded)
        out.quality = options_.quarantineQuality;
    if (out.servedDegraded)
        ++stats_.degradedServed;
    stats_.qualitySum += out.quality;
    scratch_ = Scratch{};
    return out;
}

void
SdcController::dropInference()
{
    scratch_ = Scratch{};
}

void
SdcController::finish(double now)
{
    for (const CorruptionEvent &ev :
         injector_->drawCorruptionsUpTo(now)) {
        events_.push_back(EventRecord{ev, -1.0, DetectionChannel::None,
                                      false});
        applyEvent(ev, events_.size() - 1);
    }
    if (options_.scrubIntervalSeconds > 0.0) {
        // One final full sweep: anything still resident is found
        // within a scrub period of the run's end.
        scrubTo(now + options_.scrubIntervalSeconds);
    }
    completeRepairs(1e30);
}

} // namespace recperf
