#include "resilience/replica_set.hh"

#include <algorithm>

#include "core/logging.hh"
#include "obs/trace.hh"

namespace recperf {

bool
routerPolicyFromName(const std::string &name, RouterPolicy *policy)
{
    if (name == "primary-first" || name == "primary")
        *policy = RouterPolicy::PrimaryFirst;
    else if (name == "least-loaded")
        *policy = RouterPolicy::LeastLoaded;
    else if (name == "p2c" || name == "power-of-two")
        *policy = RouterPolicy::PowerOfTwo;
    else
        return false;
    return true;
}

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
      case RouterPolicy::PrimaryFirst:
        return "primary-first";
      case RouterPolicy::LeastLoaded:
        return "least-loaded";
      case RouterPolicy::PowerOfTwo:
        return "p2c";
    }
    return "?";
}

std::string
ReplicaOptions::validate() const
{
    if (replicas < 1)
        return strprintf("need at least one replica per shard (got %u)",
                         replicas);
    if (warmupSeconds < 0.0)
        return strprintf("warm-up window cannot be negative (got %g s)",
                         warmupSeconds);
    if (warmupFactor != 0.0 && warmupFactor < 1.0)
        return strprintf("warm-up factor must be >= 1 (or 0 = auto), "
                         "got %g", warmupFactor);
    return breaker.validate();
}

void
ChaosSchedule::add(const ChaosEvent &event)
{
    RP_ASSERT(event.end >= event.start,
              "chaos window ends (%g) before it starts (%g)", event.end,
              event.start);
    events_.push_back(event);
}

ChaosSchedule
ChaosSchedule::random(uint64_t seed, uint32_t num_shards,
                      uint32_t replicas, double horizon_seconds,
                      uint32_t events, double mean_duration_seconds)
{
    RP_ASSERT(num_shards >= 1 && replicas >= 1,
              "chaos needs at least one shard and replica");
    Rng rng(seed ^ 0xc4a05c4a05ULL);
    ChaosSchedule schedule;
    for (uint32_t i = 0; i < events; ++i) {
        ChaosEvent e;
        e.start = rng.nextDouble() * horizon_seconds;
        e.end = e.start +
            mean_duration_seconds * (0.2 + 0.8 * rng.nextDouble());
        switch (i % 3) {
          case 0:
            e.kind = ChaosEvent::Kind::KillReplica;
            e.shard = static_cast<uint32_t>(rng.nextBelow(num_shards));
            e.replica = static_cast<uint32_t>(rng.nextBelow(replicas));
            break;
          case 1:
            e.kind = ChaosEvent::Kind::KillRack;
            e.replica = static_cast<uint32_t>(rng.nextBelow(replicas));
            break;
          default:
            e.kind = ChaosEvent::Kind::StragglerStorm;
            e.factor = 2.0 + 4.0 * rng.nextDouble();
            break;
        }
        schedule.add(e);
    }
    return schedule;
}

bool
ChaosSchedule::forcedDown(uint32_t shard, uint32_t replica,
                          double now) const
{
    for (const ChaosEvent &e : events_) {
        if (now < e.start || now >= e.end)
            continue;
        if (e.kind == ChaosEvent::Kind::KillReplica &&
            e.shard == shard && e.replica == replica)
            return true;
        if (e.kind == ChaosEvent::Kind::KillRack && e.replica == replica)
            return true;
    }
    return false;
}

double
ChaosSchedule::serviceFactor(double now) const
{
    double factor = 1.0;
    for (const ChaosEvent &e : events_) {
        if (e.kind == ChaosEvent::Kind::StragglerStorm &&
            now >= e.start && now < e.end)
            factor *= e.factor;
    }
    return factor;
}

ReplicaSet::ReplicaSet(uint32_t shard, const ReplicaOptions &options,
                       double warmup_factor)
    : shard_(shard), options_(options),
      warmup_factor_(std::max(warmup_factor, 1.0)),
      route_rng_(options.seed ^ (0x5e7a11c0deULL * (shard + 1)))
{
    std::string err = options_.validate();
    RP_ASSERT(err.empty(), "%s", err.c_str());
    BreakerOptions breaker = options_.breaker;
    breaker.seed = options_.seed ^ (0x11ca1b2ea3ULL * (shard + 1));
    for (uint32_t r = 0; r < options_.replicas; ++r)
        replicas_.emplace_back(breaker, r);
}

double
ReplicaSet::loadOf(const Replica &replica, double now) const
{
    return std::max(replica.busyUntil - now, 0.0);
}

bool
ReplicaSet::better(const Replica &a, const Replica &b, double now) const
{
    double load_a = loadOf(a, now);
    double load_b = loadOf(b, now);
    if (load_a != load_b)
        return load_a < load_b;
    // Health tiebreak: prefer the lower smoothed latency. Replicas
    // without history score as the peer's EWMA, i.e. neutrally.
    double fallback = std::max(a.health.ewmaSeconds(),
                               b.health.ewmaSeconds());
    return a.health.score(fallback) < b.health.score(fallback);
}

ReplicaSet::Pick
ReplicaSet::route(double now)
{
    // Consult every breaker first: open ones are failed over, and a
    // half-open one consumes its seeded probe-admission coin.
    std::vector<uint32_t> admitted;
    admitted.reserve(replicas_.size());
    for (uint32_t r = 0; r < replicas_.size(); ++r) {
        BreakerState before = replicas_[r].breaker.state();
        bool allow = replicas_[r].breaker.allowRequest(now);
        noteBreakerTransition(r, before, now);
        if (allow)
            admitted.push_back(r);
    }
    if (admitted.empty())
        return {};

    Pick pick;
    if (options_.router == RouterPolicy::PowerOfTwo &&
        admitted.size() >= 2) {
        // Two seeded candidates; the loser is the natural hedge target.
        uint64_t i = route_rng_.nextBelow(admitted.size());
        uint64_t j = route_rng_.nextBelow(admitted.size() - 1);
        if (j >= i)
            ++j;
        uint32_t a = admitted[i];
        uint32_t b = admitted[j];
        bool a_wins = better(replicas_[a], replicas_[b], now);
        pick.replica = static_cast<int>(a_wins ? a : b);
        pick.alternate = static_cast<int>(a_wins ? b : a);
        return pick;
    }

    auto ahead = [&](uint32_t a, uint32_t b) {
        if (options_.router == RouterPolicy::PrimaryFirst)
            return a < b;
        if (better(replicas_[a], replicas_[b], now))
            return true;
        if (better(replicas_[b], replicas_[a], now))
            return false;
        return a < b;
    };
    uint32_t best = admitted.front();
    for (uint32_t r : admitted) {
        if (r != best && ahead(r, best))
            best = r;
    }
    pick.replica = static_cast<int>(best);
    for (uint32_t r : admitted) {
        if (r == best)
            continue;
        if (pick.alternate < 0 ||
            ahead(r, static_cast<uint32_t>(pick.alternate)))
            pick.alternate = static_cast<int>(r);
    }
    return pick;
}

void
ReplicaSet::recordSuccess(uint32_t replica, double latency, double now)
{
    RP_ASSERT(replica < replicas_.size(), "replica %u out of range",
              replica);
    Replica &r = replicas_[replica];
    r.health.recordSuccess(latency, now);
    BreakerState before = r.breaker.state();
    r.breaker.onSuccess(now);
    noteBreakerTransition(replica, before, now);
    r.busyUntil = std::max(r.busyUntil, now) + latency;
}

void
ReplicaSet::recordError(uint32_t replica, double now)
{
    RP_ASSERT(replica < replicas_.size(), "replica %u out of range",
              replica);
    Replica &r = replicas_[replica];
    r.health.recordError(now);
    BreakerState before = r.breaker.state();
    r.breaker.onFailure(now);
    noteBreakerTransition(replica, before, now);
}

void
ReplicaSet::noteBreakerTransition(uint32_t replica, BreakerState before,
                                  double now) const
{
    obs::Tracer &tracer = obs::Tracer::global();
    if (!tracer.enabled())
        return;
    BreakerState after = replicas_[replica].breaker.state();
    if (after == before)
        return;
    tracer.instant(
        "resilience",
        strprintf("breaker s%u/r%u %s", shard_, replica,
                  breakerStateName(after)),
        now, 1 + shard_,
        {{"from", breakerStateName(before)},
         {"to", breakerStateName(after)}});
}

bool
ReplicaSet::observeUp(uint32_t replica, bool up, double now)
{
    RP_ASSERT(replica < replicas_.size(), "replica %u out of range",
              replica);
    Replica &r = replicas_[replica];
    if (up && !r.observedUp)
        r.recoveredAt = now; // back from a down window: start cold
    r.observedUp = up;
    return up;
}

double
ReplicaSet::warmupMultiplier(uint32_t replica, double now) const
{
    RP_ASSERT(replica < replicas_.size(), "replica %u out of range",
              replica);
    const Replica &r = replicas_[replica];
    if (r.recoveredAt < 0.0 || options_.warmupSeconds <= 0.0 ||
        warmup_factor_ <= 1.0)
        return 1.0;
    double progress = (now - r.recoveredAt) / options_.warmupSeconds;
    if (progress >= 1.0)
        return 1.0;
    return 1.0 + (warmup_factor_ - 1.0) * (1.0 - std::max(progress, 0.0));
}

const HealthTracker &
ReplicaSet::health(uint32_t replica) const
{
    return replicas_.at(replica).health;
}

const CircuitBreaker &
ReplicaSet::breaker(uint32_t replica) const
{
    return replicas_.at(replica).breaker;
}

CircuitBreaker &
ReplicaSet::breaker(uint32_t replica)
{
    return replicas_.at(replica).breaker;
}

uint64_t
ReplicaSet::breakerOpens() const
{
    uint64_t n = 0;
    for (const Replica &r : replicas_)
        n += r.breaker.timesOpened();
    return n;
}

uint64_t
ReplicaSet::breakerCloses() const
{
    uint64_t n = 0;
    for (const Replica &r : replicas_)
        n += r.breaker.timesClosed();
    return n;
}

uint64_t
ReplicaSet::probesAdmitted() const
{
    uint64_t n = 0;
    for (const Replica &r : replicas_)
        n += r.breaker.probesAdmitted();
    return n;
}

} // namespace recperf
