/**
 * @file
 * Mitigation policies layered against injected faults.
 *
 * Each policy is a small plain-options struct consumed by the serving
 * layer:
 *
 *  - RetryPolicy: per-shard request timeout plus bounded retries with
 *    exponential backoff. Exhausted retries surface as a *failed*
 *    inference (never a hang).
 *  - HedgePolicy: issue a duplicate ("hedged") request to a replica
 *    once the primary has been outstanding longer than a p95-style
 *    delay; the effective latency is min(primary, hedge) at the cost
 *    of duplicated compute and network traffic (Dean & Barroso, "The
 *    Tail at Scale").
 *  - AdmissionOptions: shed an item at arrival when its predicted
 *    queue wait already consumes more than a budgeted fraction of the
 *    SLA — serving it would almost certainly miss, and it would drag
 *    queued items past the SLA with it.
 *  - DegradeOptions: under a deep backlog, serve smaller batches (to
 *    bound per-batch latency) and drop low-priority items instead of
 *    missing the SLA for everyone.
 */

#ifndef RECPERF_RESILIENCE_POLICIES_HH
#define RECPERF_RESILIENCE_POLICIES_HH

#include <cmath>
#include <cstdint>
#include <string>

namespace recperf {

/** Per-shard timeout + bounded retry with exponential backoff. */
struct RetryPolicy
{
    /** Abandon an attempt after this long; 0 waits out any straggler
     *  (failed shards still fail fast, so no policy ever hangs).
     *  When the request carries a Deadline, every attempt's effective
     *  timeout is this value clamped to the remaining budget
     *  (Deadline::clampTimeout), and no retry is issued once the
     *  budget cannot cover the p50 of a fresh attempt. */
    double timeoutSeconds = 0.0;

    /** Re-sends after the initial attempt. */
    int maxRetries = 2;

    /** Backoff before the first retry; doubles every retry. */
    double backoffSeconds = 200e-6;

    /** Growth of the backoff per retry. */
    double backoffMultiplier = 2.0;

    /** Detection latency of a down shard (connection refused). */
    double failFastSeconds = 20e-6;

    /** Backoff inserted before retry number @p retry (0-based). */
    double backoffBefore(int retry) const
    {
        return backoffSeconds * std::pow(backoffMultiplier, retry);
    }
};

/** Hedged (duplicate) requests against a shard replica. */
struct HedgePolicy
{
    bool enabled = false;

    /** Outstanding time before the hedge is sent; 0 auto-calibrates to
     *  the p95 of the warmup shard service times. A hedge is skipped
     *  when the request's remaining deadline budget could not cover
     *  the delay — the duplicate would be wasted work. */
    double delaySeconds = 0.0;
};

/** SLA-aware admission control on the batching queue. */
struct AdmissionOptions
{
    bool enabled = false;

    /** Shed an item when its predicted wait exceeds this fraction of
     *  the SLA (the remainder is budget for service time). */
    double maxWaitFraction = 0.5;
};

/** Degraded-service mode under overload. */
struct DegradeOptions
{
    bool enabled = false;

    /** Enter degraded mode when the backlog exceeds this many maximum
     *  batches' worth of items. */
    double backlogFactor = 2.0;

    /** Batch cap while degraded (bounds per-batch latency). */
    int64_t degradedMaxBatch = 8;

    /** Fraction of items marked low priority; they are dropped (not
     *  served) while degraded. */
    double lowPriorityFraction = 0.0;
};

/**
 * CLI-grade validation: each returns an empty string when the policy
 * is sane and a human-readable description of the first problem
 * otherwise, so tools can reject nonsensical configurations with a
 * clear error instead of tripping an assertion mid-run.
 */
std::string validateRetryPolicy(const RetryPolicy &retry);

/** Cross-checks the hedge against the retry timeout (a hedge delay at
 *  or beyond the timeout would never fire). */
std::string validateHedgePolicy(const HedgePolicy &hedge,
                                const RetryPolicy &retry);

std::string validateAdmissionOptions(const AdmissionOptions &admission);

std::string validateDegradeOptions(const DegradeOptions &degrade);

} // namespace recperf

#endif // RECPERF_RESILIENCE_POLICIES_HH
