#include "resilience/deadline.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.hh"

namespace recperf {

double
Deadline::remaining(double now) const
{
    if (!enabled())
        return std::numeric_limits<double>::infinity();
    return std::max(0.0, deadlineAt() - now);
}

double
Deadline::clampTimeout(double fixedTimeoutSeconds, double now) const
{
    double bound = fixedTimeoutSeconds > 0.0
        ? fixedTimeoutSeconds
        : std::numeric_limits<double>::infinity();
    return std::min(bound, remaining(now));
}

std::string
validateDeadlineSeconds(double budgetSeconds)
{
    if (std::isnan(budgetSeconds))
        return "deadline budget cannot be NaN";
    if (std::isinf(budgetSeconds))
        return "deadline budget must be finite (0 disables it)";
    if (budgetSeconds < 0.0)
        return strprintf("deadline budget cannot be negative (got %g s)",
                         budgetSeconds);
    return "";
}

} // namespace recperf
