#include "resilience/fault_injector.hh"

#include <cmath>

#include "core/logging.hh"

namespace recperf {

std::string
FaultOptions::validate() const
{
    if (stragglerProb < 0.0 || stragglerProb > 1.0)
        return strprintf("straggler probability %g out of [0,1]",
                         stragglerProb);
    if (stragglerProb > 0.0 && stragglerAlpha <= 1.0)
        return strprintf("straggler pareto shape must exceed 1 for a "
                         "finite mean (got %g)", stragglerAlpha);
    if (stragglerProb > 0.0 && stragglerMin < 1.0)
        return strprintf("a straggler cannot be faster than the base "
                         "service (min slowdown %g < 1)", stragglerMin);
    if (shardMtbfSeconds < 0.0)
        return strprintf("MTBF cannot be negative (got %g s)",
                         shardMtbfSeconds);
    if (shardMttrSeconds < 0.0)
        return strprintf("MTTR cannot be negative (got %g s)",
                         shardMttrSeconds);
    if (spikeRatePerSec < 0.0)
        return strprintf("load-spike rate cannot be negative (got %g/s)",
                         spikeRatePerSec);
    if (spikeRatePerSec > 0.0 && spikeDurationSeconds < 0.0)
        return strprintf("load-spike duration cannot be negative "
                         "(got %g s)", spikeDurationSeconds);
    if (spikeRatePerSec > 0.0 && spikeFactor < 1.0)
        return strprintf("spikes only slow things down (factor %g < 1)",
                         spikeFactor);
    return corruption.validate();
}

FaultInjector::FaultInjector(const FaultOptions &options,
                             uint32_t num_shards)
    : options_(options), straggler_rng_(options.seed ^ 0x51a6617ab1ULL),
      spike_rng_(options.seed ^ 0x9c0ffee000ULL),
      corruption_rng_(options.seed ^ 0x5dc0ffeeb5ULL)
{
    std::string err = options_.validate();
    RP_ASSERT(err.empty(), "%s", err.c_str());
    RP_ASSERT(options_.stragglerAlpha > 1.0,
              "pareto shape must exceed 1 for a finite mean");
    RP_ASSERT(options_.stragglerMin >= 1.0,
              "a straggler cannot be faster than the base service");
    RP_ASSERT(options_.spikeFactor >= 1.0, "spikes only slow things down");

    Rng master(options.seed ^ 0x4e51713ab3ULL);
    for (uint32_t s = 0; s < num_shards; ++s) {
        ShardState state;
        state.rng = master.split();
        if (options_.shardMtbfSeconds > 0.0) {
            state.nextTransition = state.rng.nextExponential(
                1.0 / options_.shardMtbfSeconds);
        }
        shards_.push_back(state);
    }
}

void
FaultInjector::advanceSpikes(double now)
{
    if (options_.spikeRatePerSec <= 0.0)
        return;
    if (next_spike_ == 0.0 && !in_spike_ && spikes_ == 0) {
        next_spike_ = spike_rng_.nextExponential(options_.spikeRatePerSec);
    }
    for (;;) {
        if (!in_spike_) {
            if (next_spike_ > now)
                break;
            in_spike_ = true;
            spike_end_ = next_spike_ + options_.spikeDurationSeconds;
            ++spikes_;
            if (log_ != nullptr)
                log_->recordSpike(next_spike_,
                                  options_.spikeDurationSeconds,
                                  options_.spikeFactor);
        } else {
            if (spike_end_ > now)
                break;
            in_spike_ = false;
            next_spike_ = spike_end_ +
                spike_rng_.nextExponential(options_.spikeRatePerSec);
        }
    }
}

void
FaultInjector::setCorruptionTopology(const CorruptionTopology &topology)
{
    RP_ASSERT(!topology.empty(), "corruption topology has no shards");
    RP_ASSERT(topology.tableRows.size() == topology.shards,
              "topology lists %zu shards of tables for %u shards",
              topology.tableRows.size(), topology.shards);
    topology_ = topology;
    zipf_.clear();
    const CorruptionOptions &c = options_.corruption;
    for (uint32_t s = 0; s < topology_.shards; ++s) {
        RP_ASSERT(!topology_.tableRows[s].empty() ||
                      topology_.fcRows > 0,
                  "shard %u holds no corruptible state", s);
        if (c.zipfAlpha <= 0.0)
            continue;
        std::vector<ZipfGen> gens;
        for (int64_t rows : topology_.tableRows[s])
            gens.emplace_back(rows, c.zipfAlpha,
                              corruption_rng_.split());
        zipf_.push_back(std::move(gens));
    }
    corruption_armed_ = true;
}

CorruptionEvent
FaultInjector::drawCorruptionAt(double t)
{
    const CorruptionOptions &c = options_.corruption;
    CorruptionEvent ev;
    ev.time = t;
    ev.shard = static_cast<uint32_t>(
        corruption_rng_.nextBelow(topology_.shards));
    ev.replica = static_cast<uint32_t>(
        corruption_rng_.nextBelow(topology_.replicas));
    double kind = corruption_rng_.nextDouble();
    if (kind < c.stuckRowFraction)
        ev.kind = CorruptionKind::StuckRow;
    else if (kind < c.stuckRowFraction + c.multiBitFraction)
        ev.kind = CorruptionKind::MultiBitFlip;
    else
        ev.kind = CorruptionKind::SingleBitFlip;
    const std::vector<int64_t> &tables = topology_.tableRows[ev.shard];
    bool hit_fc = topology_.fcRows > 0 &&
        (tables.empty() || corruption_rng_.nextDouble() < c.fcFraction);
    if (hit_fc) {
        ev.table = -1;
        ev.row = static_cast<int64_t>(corruption_rng_.nextBelow(
            static_cast<uint64_t>(topology_.fcRows)));
        ev.bit = corruption_rng_.nextBelow(
            static_cast<uint64_t>(topology_.fcRowBits));
    } else {
        ev.table = static_cast<int32_t>(
            corruption_rng_.nextBelow(tables.size()));
        int64_t rows = tables[static_cast<size_t>(ev.table)];
        ev.row = c.zipfAlpha > 0.0
            ? zipf_[ev.shard][static_cast<size_t>(ev.table)].next()
            : static_cast<int64_t>(corruption_rng_.nextBelow(
                  static_cast<uint64_t>(rows)));
        ev.bit = corruption_rng_.nextBelow(
            static_cast<uint64_t>(topology_.rowBits()));
    }
    return ev;
}

std::vector<CorruptionEvent>
FaultInjector::drawCorruptionsUpTo(double now)
{
    std::vector<CorruptionEvent> events;
    const CorruptionOptions &c = options_.corruption;
    if (!c.enabled())
        return events;
    RP_ASSERT(corruption_armed_,
              "corruption enabled but no topology armed");
    if (next_corruption_ < 0.0)
        next_corruption_ = corruption_rng_.nextExponential(c.ratePerSec);
    while (next_corruption_ <= now) {
        CorruptionEvent ev = drawCorruptionAt(next_corruption_);
        if (log_ != nullptr)
            log_->recordCorruption(ev);
        events.push_back(ev);
        ++corruptions_;
        next_corruption_ +=
            corruption_rng_.nextExponential(c.ratePerSec);
    }
    return events;
}

double
FaultInjector::serviceMultiplier(double now)
{
    double mult = 1.0;
    advanceSpikes(now);
    if (in_spike_)
        mult *= options_.spikeFactor;
    if (options_.stragglerProb > 0.0 &&
        straggler_rng_.nextBool(options_.stragglerProb)) {
        // Pareto(alpha, x_min): x_min * u^(-1/alpha), u in (0, 1].
        double u = 1.0 - straggler_rng_.nextDouble();
        mult *= options_.stragglerMin *
            std::pow(u, -1.0 / options_.stragglerAlpha);
        ++stragglers_;
    }
    return mult;
}

bool
FaultInjector::shardUp(uint32_t shard, double now)
{
    if (options_.shardMtbfSeconds <= 0.0)
        return true;
    RP_ASSERT(shard < shards_.size(), "shard %u out of range", shard);
    ShardState &st = shards_[shard];
    while (st.nextTransition <= now) {
        st.up = !st.up;
        if (log_ != nullptr)
            log_->recordNodeTransition(shard, st.up, st.nextTransition);
        double mean = st.up ? options_.shardMtbfSeconds
                            : options_.shardMttrSeconds;
        // Degenerate repair/failure times advance by a tiny epsilon so
        // the renewal process always makes progress.
        double dwell = mean > 0.0 ? st.rng.nextExponential(1.0 / mean)
                                  : 1e-12;
        st.nextTransition += dwell;
    }
    if (!st.up)
        ++down_answers_;
    return st.up;
}

} // namespace recperf
