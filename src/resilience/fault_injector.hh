/**
 * @file
 * Seeded fault injection for the serving layer.
 *
 * The paper's tail-latency study (§VI-A) shows that the p99 of
 * production recommendation serving is dominated by effects the clean
 * timing model does not produce on its own: co-location interference,
 * OS/scheduler noise, and transient node misbehaviour. FaultInjector
 * supplies those disturbances deterministically so mitigation policies
 * (timeouts, retries, hedged requests, load shedding) can be evaluated
 * reproducibly:
 *
 *  - stragglers: with probability p a service time is inflated by a
 *    Pareto-distributed slowdown (heavy right tail, as observed in
 *    datacenter traces);
 *  - transient shard failures: each shard alternates between up and
 *    down states with exponentially distributed time-to-failure (MTBF)
 *    and time-to-repair (MTTR);
 *  - load spikes: Poisson-arriving intervals during which every
 *    service time is inflated by a constant factor (antagonist jobs,
 *    §VI co-location).
 *
 * All randomness flows from one seed; the same seed and query sequence
 * yields bit-identical fault schedules.
 */

#ifndef RECPERF_RESILIENCE_FAULT_INJECTOR_HH
#define RECPERF_RESILIENCE_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "resilience/corruption.hh"
#include "trace/id_generator.hh"

namespace recperf {

/** Knobs of the failure model. */
struct FaultOptions
{
    /** Probability that a service-time sample is a straggler. */
    double stragglerProb = 0.0;

    /** Pareto tail shape of the straggler slowdown (> 1). */
    double stragglerAlpha = 1.5;

    /** Minimum slowdown factor of a straggler (Pareto scale, >= 1). */
    double stragglerMin = 2.0;

    /** Mean up-time of a shard before a transient failure; 0 disables
     *  shard failures. */
    double shardMtbfSeconds = 0.0;

    /** Mean repair time of a failed shard. */
    double shardMttrSeconds = 0.010;

    /** Load-spike arrivals per second; 0 disables spikes. */
    double spikeRatePerSec = 0.0;

    /** Length of one load spike. */
    double spikeDurationSeconds = 0.005;

    /** Service-time inflation while a spike is active. */
    double spikeFactor = 2.0;

    uint64_t seed = 2020;

    /** The fail-silent channel: seeded memory corruption. */
    CorruptionOptions corruption;

    /** True when any fail-stop fault channel is active (corruption is
     *  fail-silent and consumed by the SDC layer instead). */
    bool anyFaults() const
    {
        return stragglerProb > 0.0 || shardMtbfSeconds > 0.0 ||
            spikeRatePerSec > 0.0;
    }

    /** Empty when the options are sane, else a description (used by
     *  the CLI to reject bad values before constructing anything). */
    std::string validate() const;
};

/**
 * Deterministic fault source consulted by the serving layer.
 *
 * Queries carry the simulation clock so the up/down and spike renewal
 * processes unfold in simulated time. Processes advance lazily and
 * monotonically: a query earlier than a previously seen time reuses the
 * already-advanced state (queries within one inference are near-equal,
 * so this keeps the schedule deterministic without bookkeeping).
 */
class FaultInjector
{
  public:
    /**
     * @param num_shards independent shard failure processes to model;
     *        0 when only service perturbation is needed.
     */
    FaultInjector(const FaultOptions &options, uint32_t num_shards);

    /**
     * Multiplier (>= 1) to apply to a service time sampled at
     * simulation time @p now. Combines straggler and load-spike
     * inflation.
     */
    double serviceMultiplier(double now);

    /** Whether shard @p shard is serving requests at time @p now. */
    bool shardUp(uint32_t shard, double now);

    /**
     * Arm the memory-corruption channel against @p topology. Must be
     * called before drawCorruptionsUpTo() when corruption is enabled;
     * builds the Zipf row-targeting generators (one per shard-local
     * table, aligned with lookup popularity so hot rows are hit
     * proportionally more often).
     */
    void setCorruptionTopology(const CorruptionTopology &topology);

    /**
     * Poisson-arriving corruption events with time <= @p now, in
     * arrival order. Advances lazily and monotonically like the other
     * channels; every event is also appended to the fault log when one
     * is attached.
     */
    std::vector<CorruptionEvent> drawCorruptionsUpTo(double now);

    /**
     * Attach a reproducibility log; not owned, may be null. Corruption
     * events, node up/down transitions and load spikes are recorded as
     * they are drawn.
     */
    void setLog(FaultLog *log) { log_ = log; }

    /** Corruption events drawn so far. */
    uint64_t corruptionsInjected() const { return corruptions_; }

    uint32_t numShards() const
    {
        return static_cast<uint32_t>(shards_.size());
    }

    /** Straggler slowdowns injected so far. */
    uint64_t stragglersInjected() const { return stragglers_; }

    /** Load spikes started so far. */
    uint64_t spikesStarted() const { return spikes_; }

    /** Queries answered "shard down" so far. */
    uint64_t downAnswers() const { return down_answers_; }

  private:
    struct ShardState
    {
        bool up = true;
        double nextTransition = 0.0;
        Rng rng{0};
    };

    void advanceSpikes(double now);
    CorruptionEvent drawCorruptionAt(double t);

    FaultOptions options_;
    Rng straggler_rng_;
    Rng spike_rng_;
    Rng corruption_rng_;
    std::vector<ShardState> shards_;

    bool in_spike_ = false;
    double next_spike_ = 0.0;
    double spike_end_ = 0.0;

    CorruptionTopology topology_;
    /** Zipf row generators, [shard][local table]; empty when row
     *  targeting is uniform (zipfAlpha == 0). */
    std::vector<std::vector<ZipfGen>> zipf_;
    bool corruption_armed_ = false;
    double next_corruption_ = -1.0; ///< < 0: first arrival not drawn

    FaultLog *log_ = nullptr;

    uint64_t stragglers_ = 0;
    uint64_t spikes_ = 0;
    uint64_t down_answers_ = 0;
    uint64_t corruptions_ = 0;
};

} // namespace recperf

#endif // RECPERF_RESILIENCE_FAULT_INJECTOR_HH
