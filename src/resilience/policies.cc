#include "resilience/policies.hh"

#include "core/logging.hh"

namespace recperf {

std::string
validateRetryPolicy(const RetryPolicy &retry)
{
    if (retry.timeoutSeconds < 0.0)
        return strprintf("timeout cannot be negative (got %g s); use 0 "
                         "to disable it", retry.timeoutSeconds);
    if (retry.maxRetries < 0)
        return strprintf("max retries cannot be negative (got %d)",
                         retry.maxRetries);
    if (retry.backoffSeconds < 0.0)
        return strprintf("retry backoff cannot be negative (got %g s)",
                         retry.backoffSeconds);
    if (retry.backoffMultiplier < 1.0)
        return strprintf("backoff multiplier must be >= 1 (got %g)",
                         retry.backoffMultiplier);
    if (retry.failFastSeconds < 0.0)
        return strprintf("fail-fast detection latency cannot be "
                         "negative (got %g s)", retry.failFastSeconds);
    return "";
}

std::string
validateHedgePolicy(const HedgePolicy &hedge, const RetryPolicy &retry)
{
    if (hedge.delaySeconds < 0.0)
        return strprintf("hedge delay cannot be negative (got %g s); "
                         "use 0 for auto p95", hedge.delaySeconds);
    if (hedge.enabled && hedge.delaySeconds > 0.0 &&
        retry.timeoutSeconds > 0.0 &&
        hedge.delaySeconds >= retry.timeoutSeconds) {
        return strprintf("hedge delay (%g s) must be below the request "
                         "timeout (%g s), or the hedge can never fire",
                         hedge.delaySeconds, retry.timeoutSeconds);
    }
    return "";
}

std::string
validateAdmissionOptions(const AdmissionOptions &admission)
{
    if (admission.enabled && (admission.maxWaitFraction <= 0.0 ||
                              admission.maxWaitFraction > 1.0)) {
        return strprintf("admission wait budget must be in (0,1] of the "
                         "SLA (got %g)", admission.maxWaitFraction);
    }
    return "";
}

std::string
validateDegradeOptions(const DegradeOptions &degrade)
{
    if (!degrade.enabled)
        return "";
    if (degrade.backlogFactor <= 0.0)
        return strprintf("degrade backlog factor must be positive "
                         "(got %g)", degrade.backlogFactor);
    if (degrade.degradedMaxBatch < 1)
        return strprintf("degraded batch cap must be >= 1 (got %lld)",
                         static_cast<long long>(degrade.degradedMaxBatch));
    if (degrade.lowPriorityFraction < 0.0 ||
        degrade.lowPriorityFraction > 1.0) {
        return strprintf("low-priority fraction %g out of [0,1]",
                         degrade.lowPriorityFraction);
    }
    return "";
}

} // namespace recperf
