#include "resilience/circuit_breaker.hh"

#include "core/logging.hh"

namespace recperf {

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

std::string
BreakerOptions::validate() const
{
    if (errorThreshold < 1)
        return strprintf("breaker error threshold must be >= 1 (got %d)",
                         errorThreshold);
    if (openSeconds < 0.0)
        return strprintf("breaker cooldown cannot be negative (got %g s)",
                         openSeconds);
    if (probeAdmitProb <= 0.0 || probeAdmitProb > 1.0)
        return strprintf("breaker probe probability %g out of (0,1] "
                         "(0 would never re-close)", probeAdmitProb);
    if (closeAfterProbes < 1)
        return strprintf("breaker close-after-probes must be >= 1 "
                         "(got %d)", closeAfterProbes);
    return "";
}

CircuitBreaker::CircuitBreaker(const BreakerOptions &options, uint64_t salt)
    : options_(options),
      probe_rng_(options.seed ^ (0xb8ea5e1ecbULL * (salt + 1)))
{
    std::string err = options_.validate();
    RP_ASSERT(err.empty(), "%s", err.c_str());
}

void
CircuitBreaker::trip(double now)
{
    state_ = BreakerState::Open;
    open_until_ = now + options_.openSeconds;
    consecutive_errors_ = 0;
    probe_successes_ = 0;
    ++times_opened_;
}

bool
CircuitBreaker::allowRequest(double now)
{
    if (state_ == BreakerState::Open) {
        if (now < open_until_) {
            ++rejections_;
            return false;
        }
        state_ = BreakerState::HalfOpen;
        probe_successes_ = 0;
    }
    if (state_ == BreakerState::HalfOpen) {
        if (!probe_rng_.nextBool(options_.probeAdmitProb)) {
            ++rejections_;
            return false;
        }
        ++probes_admitted_;
        return true;
    }
    return true;
}

void
CircuitBreaker::onSuccess(double now)
{
    (void)now;
    if (state_ == BreakerState::HalfOpen) {
        if (++probe_successes_ >= options_.closeAfterProbes) {
            state_ = BreakerState::Closed;
            consecutive_errors_ = 0;
            ++times_closed_;
        }
        return;
    }
    consecutive_errors_ = 0;
}

void
CircuitBreaker::onFailure(double now)
{
    if (state_ == BreakerState::HalfOpen) {
        trip(now); // a failed probe restarts the cooldown
        return;
    }
    if (state_ == BreakerState::Closed &&
        ++consecutive_errors_ >= options_.errorThreshold) {
        trip(now);
    }
}

} // namespace recperf
