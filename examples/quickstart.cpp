/**
 * @file
 * Quickstart: build a production-class recommendation model, score a
 * batch of user-post pairs functionally, then characterize the same
 * architecture on the simulated server fleet.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

int
main()
{
    // --- 1. Pick a model architecture from the zoo (Table I). ---
    ModelConfig config = rmc1Small();
    std::printf("model: %s\n", config.name.c_str());
    std::printf("  %lld embedding tables x %lld rows x dim %lld "
                "(%.1f MB at fp32)\n",
                static_cast<long long>(config.emb.numTables),
                static_cast<long long>(config.emb.rowsPerTable),
                static_cast<long long>(config.emb.embDim),
                config.embStorageBytes() / 1e6);
    std::printf("  %lld FC parameters\n\n",
                static_cast<long long>(config.fcParamCount()));

    // --- 2. Materialize it (reduced embedding rows so the tables fit
    // in an example process) and predict CTRs for a batch. ---
    Rng rng(7);
    RecModel model(config.functionalScale(/*max_rows=*/8192), rng);
    const int64_t batch = 8;
    ModelInput input = model.randomInput(batch, rng);
    Tensor ctr = model.forward(input);

    std::printf("predicted click-through rates (batch of %lld):\n",
                static_cast<long long>(batch));
    for (int64_t i = 0; i < batch; ++i)
        std::printf("  post %lld: CTR %.4f\n", static_cast<long long>(i),
                    ctr.at(i, 0));

    // --- 3. Characterize the full-scale architecture on each server
    // generation (no tables are materialized for this). ---
    std::printf("\nbatch-1 inference latency on the simulated fleet:\n");
    for (const MachineSpec &machine : fleetMachines()) {
        TimerOptions opts;
        opts.batch = 1;
        ModelTimer timer(machine, config, opts);
        ModelTiming t = timer.steadyState(30, 30);
        std::printf("  %-10s %7.1f us   (FC %4.1f%%, SLS %4.1f%%)\n",
                    machine.name.c_str(), t.totalSeconds() * 1e6,
                    t.fractionByKind(OpKind::FC) * 100,
                    t.fractionByKind(OpKind::SLS) * 100);
    }
    return 0;
}
