/**
 * @file
 * Capacity planning: exploit server heterogeneity when scheduling
 * recommendation inference (the paper's headline system insight).
 *
 * For a target SLA, sweep machine generation, batching, and co-location
 * degree with the discrete-event serving simulator, and report the
 * configuration that maximizes latency-bounded throughput (items ranked
 * per second under the SLA).
 */

#include <cstdio>
#include <string>

#include "core/logging.hh"
#include "machine/machine_spec.hh"
#include "model/zoo.hh"
#include "serving/server.hh"

using namespace recperf;

int
main()
{
    const ModelConfig model = rmc2Small();
    const double sla = 0.010; // 10 ms, search-like (Section III)

    std::printf("capacity planning for %s, SLA %.0f ms\n",
                model.name.c_str(), sla * 1e3);
    std::printf("%-10s %8s %8s | %10s %10s %9s\n", "machine", "workers",
                "batch", "p99 (ms)", "items/s", "SLA met");

    double best_throughput = 0.0;
    std::string best;
    for (const MachineSpec &machine : fleetMachines()) {
        for (uint32_t workers : {4u, 8u}) {
            for (int64_t batch : {16, 64}) {
                ServerOptions sopts;
                sopts.numWorkers = workers;
                sopts.maxBatch = batch;
                sopts.slaSeconds = sla;
                Server server(machine, model, TimerOptions{}, sopts);

                // Offered load near this configuration's capacity.
                ServingStats sat = server.runClosedLoop(4);
                double capacity = sat.totalThroughput() *
                    static_cast<double>(batch);
                Server open(machine, model, TimerOptions{}, sopts);
                ServingStats stats =
                    open.runOpenLoop(0.7 * capacity, 1'200);

                double good = stats.goodThroughput();
                std::printf("%-10s %8u %8lld | %10.2f %10.0f %8.1f%%\n",
                            machine.name.c_str(), workers,
                            static_cast<long long>(batch),
                            stats.itemLatency.p(99) * 1e3, good,
                            stats.slaFraction() * 100);
                if (good > best_throughput) {
                    best_throughput = good;
                    best = strprintf("%s x%u workers, batch %lld",
                                     machine.name.c_str(), workers,
                                     static_cast<long long>(batch));
                }
            }
        }
    }

    std::printf("\nbest configuration under the %.0f ms SLA:\n  %s "
                "(%.0f items/s within SLA)\n", sla * 1e3, best.c_str(),
                best_throughput);
    std::printf("\nNote how the best machine depends on the operating "
                "point: Broadwell\nwins latency-critical, lightly-loaded "
                "configurations; Skylake wins when\nbatching and "
                "co-location push throughput (Takeaways 3, 4, 7).\n");
    return 0;
}
