/**
 * @file
 * Training a CTR model on synthetic click data.
 *
 * The paper's open-source benchmark supports training as well as
 * inference; §II notes that sparse features make training harder —
 * embedding gradients only touch the rows gathered in the forward
 * pass. This example trains an RMC1-architecture model on a planted
 * dense+sparse click rule and reports the loss curve, accuracy,
 * which embedding rows each step actually updates.
 */

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "core/rng.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "train/trainer.hh"

using namespace recperf;

int
main()
{
    ModelConfig cfg = rmc1Small().functionalScale(2048);
    // An input generator (any model of the right shape works) and the
    // student model to be trained.
    Rng gen_rng(1);
    RecModel generator(cfg, gen_rng);
    Rng student_rng(2);
    RecModel student(cfg, student_rng);

    TrainOptions opts;
    opts.learningRate = 0.05f;
    Trainer trainer(student, opts);

    const int64_t batch = 64;
    Rng data_rng(3);

    std::printf("training %s (%lld parameters) on synthetic clicks\n",
                cfg.name.c_str(),
                static_cast<long long>(student.paramCount()));
    std::printf("%8s %10s %10s %9s\n", "step", "loss", "accuracy",
                "AUC");

    ModelInput last_inputs;
    for (int step = 1; step <= 400; ++step) {
        ModelInput inputs = generator.randomInput(batch, data_rng);

        // Planted, balanced click rule combining a dense signal (sign
        // of the first two dense features) with a sparse one (whether
        // the sample's first table-0 ID falls in the "popular" half) —
        // the latter is only learnable through the embedding rows.
        std::vector<float> labels;
        for (int64_t b = 0; b < batch; ++b) {
            float dense_signal =
                inputs.dense.at(b, 0) + inputs.dense.at(b, 1);
            int64_t first_id = inputs.sparse[0]
                .ids[static_cast<size_t>(b * cfg.emb.lookupsPerTable)];
            float sparse_signal =
                first_id < cfg.emb.rowsOf(0) / 2 ? 0.4f : -0.4f;
            labels.push_back(dense_signal + sparse_signal > 0.0f ? 1.0f
                                                                 : 0.0f);
        }

        double loss = trainer.step(inputs, labels);
        if (step == 1 || step % 80 == 0) {
            std::printf("%8d %10.4f %9.1f%% %9.3f\n", step, loss,
                        trainer.accuracy(inputs, labels) * 100.0,
                        trainer.auc(inputs, labels));
        }
        last_inputs = std::move(inputs);
    }

    // The sparsity of embedding updates: rows touched per step vs total.
    std::set<std::pair<size_t, int64_t>> touched;
    for (size_t t = 0; t < last_inputs.sparse.size(); ++t) {
        for (int64_t id : last_inputs.sparse[t].ids)
            touched.emplace(t, id);
    }
    int64_t total_rows = cfg.emb.totalRows();
    std::printf("\nsparse updates: the last step touched %zu of %lld "
                "embedding rows (%.1f%%) —\nthe training-side "
                "irregularity the paper highlights in Section II.\n",
                touched.size(), static_cast<long long>(total_rows),
                100.0 * static_cast<double>(touched.size()) /
                    static_cast<double>(total_rows));
    return 0;
}
