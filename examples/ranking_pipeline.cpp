/**
 * @file
 * The two-stage personalization pipeline of Figure 6: lightweight
 * filtering (RMC1) reduces thousands of candidate posts to a shortlist,
 * then heavyweight ranking (RMC3) orders the shortlist for display.
 *
 * The example scores real tensors end-to-end and reports the simulated
 * data-center cost of each stage.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/rec_model.hh"
#include "model/zoo.hh"
#include "timing/model_timer.hh"

using namespace recperf;

namespace {

/** Indices of the top-k scores, descending. */
std::vector<int64_t>
topK(const Tensor &scores, int64_t k)
{
    std::vector<int64_t> order(static_cast<size_t>(scores.dim(0)));
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int64_t>(i);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return scores.at(a, 0) > scores.at(b, 0);
    });
    order.resize(static_cast<size_t>(std::min<int64_t>(
        k, static_cast<int64_t>(order.size()))));
    return order;
}

/** Simulated latency of scoring @p items items in batches on @p m. */
double
stageLatency(const MachineSpec &m, const ModelConfig &cfg, int64_t items,
             int64_t batch)
{
    TimerOptions opts;
    opts.batch = batch;
    ModelTimer timer(m, cfg, opts);
    double per_batch = timer.steadyState(10, 10).totalSeconds();
    auto batches = static_cast<double>((items + batch - 1) / batch);
    return per_batch * batches;
}

} // namespace

int
main()
{
    Rng rng(11);
    const int64_t candidates = 512; // posts that survive retrieval
    const int64_t shortlist = 64;   // survive filtering
    const int64_t display = 10;     // shown to the user

    // Stage 1: lightweight filtering with RMC1.
    RecModel filter(rmc1Small().functionalScale(8192), rng);
    ModelInput stage1_in = filter.randomInput(candidates, rng);
    Tensor coarse = filter.forward(stage1_in);
    std::vector<int64_t> survivors = topK(coarse, shortlist);
    std::printf("filtering: %lld candidates -> %lld shortlisted "
                "(RMC1)\n", static_cast<long long>(candidates),
                static_cast<long long>(shortlist));

    // Stage 2: heavyweight ranking of the shortlist with RMC3.
    RecModel ranker(rmc3Small().functionalScale(8192), rng);
    ModelInput stage2_in = ranker.randomInput(shortlist, rng);
    Tensor fine = ranker.forward(stage2_in);
    std::vector<int64_t> top = topK(fine, display);

    std::printf("ranking: top %lld posts (RMC3 scores):\n",
                static_cast<long long>(display));
    for (size_t rank = 0; rank < top.size(); ++rank) {
        std::printf("  #%zu  post %lld  score %.4f\n", rank + 1,
                    static_cast<long long>(survivors[static_cast<size_t>(
                        top[rank]) % survivors.size()]),
                    fine.at(top[rank], 0));
    }

    // Simulated serving cost of each stage per user query on Broadwell.
    MachineSpec bdw = broadwell();
    double t_filter = stageLatency(bdw, rmc1Small(), candidates, 128);
    double t_rank = stageLatency(bdw, rmc3Small(), shortlist, 64);
    std::printf("\nsimulated per-query cost on %s:\n", bdw.name.c_str());
    std::printf("  filtering %5lld items @ batch 128: %7.2f ms\n",
                static_cast<long long>(candidates), t_filter * 1e3);
    std::printf("  ranking   %5lld items @ batch 64:  %7.2f ms\n",
                static_cast<long long>(shortlist), t_rank * 1e3);
    std::printf("  heavyweight ranking on the full candidate set would "
                "cost %.2f ms\n",
                stageLatency(bdw, rmc3Small(), candidates, 64) * 1e3);
    std::printf("  -> the two-stage hierarchy is %.1fx cheaper than "
                "ranking everything\n",
                stageLatency(bdw, rmc3Small(), candidates, 64) /
                    (t_filter + t_rank));
    return 0;
}
