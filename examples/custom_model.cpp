/**
 * @file
 * Using the configurable benchmark (Figure 13): define a custom
 * recommendation architecture by dialing the open-source benchmark's
 * parameters — number/shape of embedding tables, lookups per table, and
 * Bottom/Top-MLP dimensions — then study it under different sparse-ID
 * trace localities (Figure 14) on the simulated fleet.
 */

#include <cstdio>

#include "core/rng.hh"
#include "machine/machine_spec.hh"
#include "model/config.hh"
#include "model/rec_model.hh"
#include "timing/model_timer.hh"
#include "trace/id_generator.hh"

using namespace recperf;

int
main()
{
    // --- Define a custom model, exactly the Section VII-A example. ---
    ModelConfig cfg;
    cfg.name = "my-recommender";
    cfg.modelClass = ModelClass::RMC1;
    cfg.denseFeatures = 128;
    cfg.bottomMlp = {128, 64, 32};       // Bottom-MLP widths
    cfg.emb.numTables = 5;               // embedding tables
    cfg.emb.rowsPerTable = 100'000;      // input (row) dimension
    cfg.emb.embDim = 32;                 // output dimension
    cfg.emb.lookupsPerTable = 80;        // sparse IDs pooled per sample
    cfg.topMlp = {128, 32, 1};           // Top-MLP widths
    cfg.validate();

    std::printf("custom model '%s': %.1f MB embeddings, %lld FC params\n",
                cfg.name.c_str(), cfg.embStorageBytes() / 1e6,
                static_cast<long long>(cfg.fcParamCount()));

    // --- It executes functionally like any zoo model. ---
    Rng rng(3);
    RecModel model(cfg, rng);
    ModelInput input = model.randomInput(4, rng);
    Tensor ctr = model.forward(input);
    std::printf("sample CTRs: %.4f %.4f %.4f %.4f\n\n", ctr.at(0, 0),
                ctr.at(1, 0), ctr.at(2, 0), ctr.at(3, 0));

    // --- Sweep trace locality (the Fig 14 knob) and batch size. ---
    MachineSpec bdw = broadwell();
    std::printf("%-22s %10s %10s %10s\n", "trace profile", "batch 1",
                "batch 16", "batch 128");
    for (const TraceProfile &profile :
         {TraceProfile{"near-random", 0.6, 0.05, 512},
          TraceProfile{"typical", 1.0, 0.5, 8192},
          TraceProfile{"highly-local", 1.1, 0.9, 16384}}) {
        std::printf("%-22s", profile.name.c_str());
        for (int64_t batch : {1, 16, 128}) {
            TimerOptions opts;
            opts.batch = batch;
            opts.zipfAlpha = profile.zipfAlpha;
            opts.repeatProb = profile.repeatProb;
            opts.repeatWindow = profile.window;
            ModelTimer timer(bdw, cfg, opts);
            double ms = timer.steadyState(15, 15).totalSeconds() * 1e3;
            std::printf(" %8.3fms", ms);
        }
        std::printf("\n");
    }

    std::printf("\nhigher trace locality -> more embedding rows served "
                "from cache -> faster\nSparseLengthsSum, exactly the "
                "caching opportunity Fig 14 motivates.\n");
    return 0;
}
